package spec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGraphSemantics(t *testing.T) {
	sp := Graph()
	s := sp.Initial()
	s = sp.Apply(s, AddV{"a"})
	s = sp.Apply(s, AddV{"b"})
	s = sp.Apply(s, AddE{"a", "b"})
	if got := sp.KeyState(s); got != "(a,b|a→b)" {
		t.Fatalf("graph state: %s", got)
	}
	// Edge to a missing vertex is a no-op: referential integrity.
	s = sp.Apply(s, AddE{"a", "zz"})
	if got := sp.KeyState(s); got != "(a,b|a→b)" {
		t.Fatalf("dangling edge accepted: %s", got)
	}
	// Removing a vertex removes incident edges.
	s = sp.Apply(s, RemV{"b"})
	if got := sp.KeyState(s); got != "(a|)" {
		t.Fatalf("incident edge survived: %s", got)
	}
}

func TestGraphEdgeDirections(t *testing.T) {
	sp := Graph()
	s := Replay(sp, []Update{AddV{"a"}, AddV{"b"}, AddE{"a", "b"}, AddE{"b", "a"}})
	if got := sp.KeyState(s); got != "(a,b|a→b,b→a)" {
		t.Fatalf("directed edges wrong: %s", got)
	}
	s = sp.Apply(s, RemE{"a", "b"})
	if got := sp.KeyState(s); got != "(a,b|b→a)" {
		t.Fatalf("directional removal wrong: %s", got)
	}
}

func TestGraphIntegrityInvariant(t *testing.T) {
	// Invariant: after ANY update word, every edge endpoint is a
	// present vertex. This is the property CRDT graphs give up.
	sp := Graph()
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := sp.Initial()
		verts := []string{"a", "b", "c"}
		for i := 0; i < int(n%30); i++ {
			v := verts[rng.Intn(3)]
			w := verts[rng.Intn(3)]
			switch rng.Intn(4) {
			case 0:
				s = sp.Apply(s, AddV{v})
			case 1:
				s = sp.Apply(s, RemV{v})
			case 2:
				s = sp.Apply(s, AddE{v, w})
			case 3:
				s = sp.Apply(s, RemE{v, w})
			}
		}
		val := sp.Query(s, ReadGraph{}).(GraphVal)
		present := map[string]bool{}
		for _, v := range val.Vertices {
			present[v] = true
		}
		for _, e := range val.Edges {
			if !present[e[0]] || !present[e[1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphUndoRoundTrip(t *testing.T) {
	sp := Graph()
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := sp.Initial()
		verts := []string{"a", "b"}
		mkOp := func() Update {
			v := verts[rng.Intn(2)]
			w := verts[rng.Intn(2)]
			switch rng.Intn(4) {
			case 0:
				return AddV{v}
			case 1:
				return RemV{v}
			case 2:
				return AddE{v, w}
			default:
				return RemE{v, w}
			}
		}
		for i := 0; i < int(n%15); i++ {
			s = sp.Apply(s, mkOp())
		}
		before := sp.KeyState(s)
		next, undo := sp.ApplyUndo(s, mkOp())
		return sp.KeyState(undo(next)) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphExplainState(t *testing.T) {
	sp := Graph()
	val := GraphVal{Vertices: []string{"a", "b"}, Edges: [][2]string{{"a", "b"}}}
	s, ok := sp.ExplainState([]Observation{{ReadGraph{}, val}})
	if !ok {
		t.Fatalf("legal graph should explain")
	}
	if !sp.EqualOutput(sp.Query(s, ReadGraph{}), val) {
		t.Fatalf("explained state does not reproduce the observation")
	}
	// A dangling edge is not a legal state of the type.
	bad := GraphVal{Vertices: []string{"a"}, Edges: [][2]string{{"a", "b"}}}
	if _, ok := sp.ExplainState([]Observation{{ReadGraph{}, bad}}); ok {
		t.Fatalf("dangling edge must be unexplainable")
	}
}

func TestGraphCodecRoundTrip(t *testing.T) {
	sp := Graph()
	ops := []Update{AddV{"a"}, RemV{"x y"}, AddE{"a", "b"}, RemE{"", "b"}}
	for _, u := range ops {
		b, err := sp.EncodeUpdate(u)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sp.DecodeUpdate(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != u {
			t.Fatalf("round trip %v -> %v", u, got)
		}
	}
}

func TestSequenceSemantics(t *testing.T) {
	sp := Sequence()
	s := sp.Initial()
	s = sp.Apply(s, InsAt{0, "b"})
	s = sp.Apply(s, InsAt{0, "a"})
	s = sp.Apply(s, InsAt{2, "c"})
	if got := sp.Query(s, ReadSeq{}).(Lines).String(); got != "[a;b;c]" {
		t.Fatalf("sequence: %s", got)
	}
	s = sp.Apply(s, DelAt{1})
	if got := sp.Query(s, ReadSeq{}).(Lines).String(); got != "[a;c]" {
		t.Fatalf("after delete: %s", got)
	}
}

func TestSequenceClamping(t *testing.T) {
	// Total functions: out-of-range positions clamp (insert) or no-op
	// (delete), so every linearization is executable.
	sp := Sequence()
	s := Replay(sp, []Update{InsAt{100, "x"}, InsAt{-5, "y"}, DelAt{42}, DelAt{-1}})
	if got := sp.Query(s, ReadSeq{}).(Lines).String(); got != "[y;x]" {
		t.Fatalf("clamped sequence: %s", got)
	}
}

func TestSequenceNotCommutative(t *testing.T) {
	sp := Sequence()
	a := sp.KeyState(Replay(sp, []Update{InsAt{0, "a"}, InsAt{0, "b"}}))
	b := sp.KeyState(Replay(sp, []Update{InsAt{0, "b"}, InsAt{0, "a"}}))
	if a == b {
		t.Fatalf("front inserts unexpectedly commute")
	}
}

func TestSequenceUndoRoundTrip(t *testing.T) {
	sp := Sequence()
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := sp.Initial()
		mkOp := func() Update {
			if rng.Intn(3) == 0 {
				return DelAt{Pos: rng.Intn(6) - 1}
			}
			return InsAt{Pos: rng.Intn(8) - 1, V: string(rune('a' + rng.Intn(4)))}
		}
		for i := 0; i < int(n%15); i++ {
			s = sp.Apply(s, mkOp())
		}
		before := sp.KeyState(sp.Clone(s))
		next, undo := sp.ApplyUndo(sp.Clone(s).([]string), mkOp())
		return sp.KeyState(undo(next)) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSequenceCodecRoundTrip(t *testing.T) {
	sp := Sequence()
	ops := []Update{InsAt{0, "x"}, InsAt{12, "a b"}, DelAt{0}, DelAt{99}}
	for _, u := range ops {
		b, err := sp.EncodeUpdate(u)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sp.DecodeUpdate(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != u {
			t.Fatalf("round trip %v -> %v", u, got)
		}
	}
}

func TestNewTypesRegistered(t *testing.T) {
	for _, name := range []string{"graph", "sequence"} {
		adt, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if adt.Name() != name {
			t.Fatalf("registry name mismatch for %s", name)
		}
	}
}
