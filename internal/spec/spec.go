// Package spec implements the update-query abstract data type (UQ-ADT)
// formalism of Perrin, Mostéfaoui and Jard, "Update Consistency for
// Wait-free Concurrent Objects" (IPDPS 2015), Definition 1.
//
// A UQ-ADT is a transition system O = (U, Qi, Qo, S, s0, T, G): updates
// U are side-effecting operations with no return value; queries are pairs
// qi/qo of a query input and the output it returned. T is the transition
// function on states, G the output function. The set L(O) of sequential
// histories recognized by O is decided by Replay and ValidSequential.
//
// The package also provides the concrete data types used throughout the
// paper and its reproduction: the set S_Val (Example 1), a last-writer
// register, a commutative counter, the register-map memory of Algorithm 2,
// and queue/stack/log types whose mixed operations are split into
// update and query halves exactly as the paper prescribes for the stack
// ("lookup top" and "delete top").
package spec

import (
	"fmt"
	"sort"
	"strings"
)

// State, Update, QueryInput and QueryOutput are the alphabet sorts of a
// UQ-ADT. They are deliberately untyped at this layer: each concrete
// UQADT documents its own concrete types, and the typed façades in
// internal/core recover static safety for library users.
type (
	// State is an abstract state s ∈ S of the transition system.
	State = any
	// Update is an update operation u ∈ U.
	Update = any
	// QueryInput is a query operation input qi ∈ Qi.
	QueryInput = any
	// QueryOutput is a query return value qo ∈ Qo.
	QueryOutput = any
)

// UQADT is Definition 1 of the paper: a sequential specification given as
// a (possibly infinite) transition system with an initial state, a
// transition function for updates and an output function for queries.
//
// Apply may mutate its argument state for efficiency; callers must use
// the returned State and must not touch the argument afterwards. To
// branch a state (as the consistency deciders do during linearization
// search), Clone it first. Query must never mutate the state.
type UQADT interface {
	// Name identifies the data type (e.g. "set", "memory").
	Name() string
	// Initial returns a fresh initial state s0. Distinct calls must
	// return states that do not alias each other.
	Initial() State
	// Apply is the transition function T: it returns the state reached
	// from s by update u. It may mutate and return s itself.
	Apply(s State, u Update) State
	// Clone returns a deep copy of s that shares no mutable structure.
	Clone(s State) State
	// Query is the output function G: the value returned by query input
	// in when applied in state s. It must not mutate s.
	Query(s State, in QueryInput) QueryOutput
	// EqualOutput reports whether two query outputs are equal values of
	// Qo. It is used to compare declared history outputs with replayed
	// outputs.
	EqualOutput(a, b QueryOutput) bool
	// KeyState returns a canonical encoding of s: two states are equal
	// iff their keys are equal. Deciders use it for memoization.
	KeyState(s State) string
}

// Undo reverses a previously applied update; it receives the state the
// update produced and must return the state the update was applied to.
// Like Apply, it may mutate its argument.
type Undo func(s State) State

// Undoable is implemented by specifications whose updates can be
// inverted given the pre-state. The undo-redo query engine of
// internal/core (the Karsenty–Beaudouin-Lafon optimization cited in
// §VII-C of the paper) requires it to splice late-arriving updates into
// the middle of the replay order without restarting from s0.
type Undoable interface {
	// ApplyUndo applies u to s and also returns an Undo closure that
	// reverses exactly this application.
	ApplyUndo(s State, u Update) (State, Undo)
}

// Observation is a query input together with the output a history claims
// it returned.
type Observation struct {
	In  QueryInput
	Out QueryOutput
}

// StateExplainer is implemented by specifications that can propose a
// state s ∈ S consistent with a set of observations, i.e. with
// G(s, o.In) = o.Out for every o. The state does not have to be
// reachable from s0 — eventual consistency (Definition 5) and strong
// convergence (Definition 6) quantify over all of S, not over reachable
// states, and the deciders in internal/check rely on that distinction.
type StateExplainer interface {
	// ExplainState returns (s, true) for some state consistent with all
	// observations, or (nil, false) if none exists.
	ExplainState(obs []Observation) (State, bool)
}

// Codec serializes updates to wire bytes. It is used by the transport
// layer to account for real message sizes (§VII-C measures message
// overhead: one broadcast per update, payload logarithmic in the clock
// and process count).
type Codec interface {
	EncodeUpdate(u Update) ([]byte, error)
	DecodeUpdate(b []byte) (Update, error)
}

// AppendCodec is an optional extension of Codec for allocation-free
// encoding on the update hot path: AppendUpdate appends the wire
// encoding of u to dst (growing it as needed) instead of returning a
// freshly allocated slice. Replicas stage outgoing messages in a
// reused scratch buffer through it, so issuing an update allocates
// only the payload handed to the transport.
type AppendCodec interface {
	Codec
	AppendUpdate(dst []byte, u Update) ([]byte, error)
}

// Commutative is implemented by specifications all of whose updates
// commute (T(T(s,u),u') = T(T(s,u'),u) for all s, u, u'). For such
// types every update linearization yields the same state, so the naive
// eager-apply implementation is already update consistent — the paper
// calls these "pure CRDTs" (counter, grow-only set).
type Commutative interface {
	// CommutativeUpdates reports that all pairs of updates commute.
	CommutativeUpdates() bool
}

// Replay runs the word of updates from the initial state and returns the
// resulting state.
func Replay(adt UQADT, updates []Update) State {
	s := adt.Initial()
	for _, u := range updates {
		s = adt.Apply(s, u)
	}
	return s
}

// ReplayFrom runs the word of updates from a clone of the given state.
func ReplayFrom(adt UQADT, s State, updates []Update) State {
	t := adt.Clone(s)
	for _, u := range updates {
		t = adt.Apply(t, u)
	}
	return t
}

// Op is one element of a sequential history: either an update or a
// query observation. Exactly one of U and Q is meaningful, selected by
// IsQuery.
type Op struct {
	IsQuery bool
	U       Update
	Q       Observation
}

// UpdateOp wraps an update as a sequential-history element.
func UpdateOp(u Update) Op { return Op{U: u} }

// QueryOp wraps a query observation as a sequential-history element.
func QueryOp(in QueryInput, out QueryOutput) Op {
	return Op{IsQuery: true, Q: Observation{In: in, Out: out}}
}

// ValidSequential decides membership of a finite word in L(O)
// (Definition 1): it replays the word from s0 and checks every query
// output against G.
func ValidSequential(adt UQADT, word []Op) bool {
	s := adt.Initial()
	for _, op := range word {
		if op.IsQuery {
			got := adt.Query(s, op.Q.In)
			if !adt.EqualOutput(got, op.Q.Out) {
				return false
			}
			continue
		}
		s = adt.Apply(s, op.U)
	}
	return true
}

// FormatOp renders a sequential-history element using the paper's
// notation: updates print as themselves, queries as "in/out".
func FormatOp(op Op) string {
	if op.IsQuery {
		return fmt.Sprintf("%v/%v", op.Q.In, op.Q.Out)
	}
	return fmt.Sprint(op.U)
}

// FormatWord renders a sequential history with the paper's "·"
// separator, e.g. "I(1)·I(2)·R/{1, 2}".
func FormatWord(word []Op) string {
	parts := make([]string, len(word))
	for i, op := range word {
		parts[i] = FormatOp(op)
	}
	return strings.Join(parts, "·")
}

// Elems is the canonical query output for set-valued reads: a sorted
// slice of element names. It is also used as the set state rendering.
type Elems []string

// String renders the set contents in the paper's notation, e.g.
// "{1, 2}" or "∅" for the empty set.
func (e Elems) String() string {
	if len(e) == 0 {
		return "∅"
	}
	return "{" + strings.Join(e, ", ") + "}"
}

// canonElems sorts and deduplicates a copy of the given elements.
func canonElems(in []string) Elems {
	out := make([]string, 0, len(in))
	seen := make(map[string]bool, len(in))
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// equalElems compares two canonical element slices.
func equalElems(a, b Elems) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
