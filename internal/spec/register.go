package spec

import "fmt"

// Write is the register update W(v): overwrite the register content.
type Write struct{ V string }

// String renders the update, e.g. "W(1)".
func (w Write) String() string { return fmt.Sprintf("W(%s)", w.V) }

// RegVal is the register query output: the current value.
type RegVal string

// String renders the output.
func (v RegVal) String() string { return string(v) }

// RegisterSpec is a single read/write register: the query R returns the
// last written value, or the initial value if none was written. It is
// the one-cell instance of the shared memory of Algorithm 2.
type RegisterSpec struct {
	// Init is the initial value v0.
	Init string
}

// Register returns a register UQ-ADT with initial value v0.
func Register(v0 string) RegisterSpec { return RegisterSpec{Init: v0} }

// Name implements UQADT.
func (RegisterSpec) Name() string { return "register" }

// Initial implements UQADT.
func (r RegisterSpec) Initial() State { return r.Init }

// Apply implements UQADT: T(s, W(v)) = v.
func (RegisterSpec) Apply(s State, u Update) State {
	w, ok := u.(Write)
	if !ok {
		panic(fmt.Sprintf("spec: register does not recognize update %T", u))
	}
	return w.V
}

// Clone implements UQADT; register states are immutable strings.
func (RegisterSpec) Clone(s State) State { return s }

// Query implements UQADT: G(s, R) = s.
func (RegisterSpec) Query(s State, in QueryInput) QueryOutput {
	if _, ok := in.(Read); !ok {
		panic(fmt.Sprintf("spec: register does not recognize query %T", in))
	}
	return RegVal(s.(string))
}

// EqualOutput implements UQADT.
func (RegisterSpec) EqualOutput(a, b QueryOutput) bool {
	va, ok := a.(RegVal)
	if !ok {
		return false
	}
	vb, ok := b.(RegVal)
	return ok && va == vb
}

// KeyState implements UQADT.
func (RegisterSpec) KeyState(s State) string { return s.(string) }

// ApplyUndo implements Undoable: a write's inverse restores the
// previous content.
func (RegisterSpec) ApplyUndo(s State, u Update) (State, Undo) {
	w, ok := u.(Write)
	if !ok {
		panic(fmt.Sprintf("spec: register does not recognize update %T", u))
	}
	prev := s
	return w.V, func(State) State { return prev }
}

// ExplainState implements StateExplainer.
func (RegisterSpec) ExplainState(obs []Observation) (State, bool) {
	if len(obs) == 0 {
		return "", true
	}
	first, ok := obs[0].Out.(RegVal)
	if !ok {
		return nil, false
	}
	for _, o := range obs[1:] {
		v, ok := o.Out.(RegVal)
		if !ok || v != first {
			return nil, false
		}
	}
	return string(first), true
}

// EncodeUpdate implements Codec.
func (sp RegisterSpec) EncodeUpdate(u Update) ([]byte, error) {
	return sp.AppendUpdate(nil, u)
}

// AppendUpdate implements AppendCodec.
func (RegisterSpec) AppendUpdate(dst []byte, u Update) ([]byte, error) {
	w, ok := u.(Write)
	if !ok {
		return nil, fmt.Errorf("spec: register does not recognize update %T", u)
	}
	return append(dst, w.V...), nil
}

// DecodeUpdate implements Codec.
func (RegisterSpec) DecodeUpdate(b []byte) (Update, error) {
	return Write{V: string(b)}, nil
}
