package spec

import (
	"fmt"
	"sort"
	"strings"
)

// The graph is the canonical example of an object with *internal
// invariants* across updates: an edge may only exist between present
// vertices, and removing a vertex removes its incident edges. CRDT
// constructions must weaken such invariants (the 2P2P-graph of the
// CRDT literature gives up on them under concurrency); the universal
// construction keeps them exactly, because every replica replays the
// same update linearization and the sequential semantics below hold
// state by state (Proposition 4 applies to "any UQ-ADT").

// AddV is the graph update "add vertex v".
type AddV struct{ V string }

// String renders the update, e.g. "AddV(a)".
func (a AddV) String() string { return fmt.Sprintf("AddV(%s)", a.V) }

// RemV is the graph update "remove vertex v (and its incident edges)".
type RemV struct{ V string }

// String renders the update.
func (r RemV) String() string { return fmt.Sprintf("RemV(%s)", r.V) }

// AddE is the graph update "add edge u→v". It is a no-op unless both
// endpoints are present — the sequential specification enforces
// referential integrity.
type AddE struct{ U, V string }

// String renders the update.
func (a AddE) String() string { return fmt.Sprintf("AddE(%s,%s)", a.U, a.V) }

// RemE is the graph update "remove edge u→v".
type RemE struct{ U, V string }

// String renders the update.
func (r RemE) String() string { return fmt.Sprintf("RemE(%s,%s)", r.U, r.V) }

// ReadGraph is the graph query: it returns the whole graph.
type ReadGraph struct{}

// String renders the query input.
func (ReadGraph) String() string { return "RG" }

// GraphVal is the graph query output: sorted vertices and edges.
type GraphVal struct {
	Vertices []string
	Edges    [][2]string
}

// String renders the graph as "(a,b|a→b)".
func (g GraphVal) String() string {
	var edges []string
	for _, e := range g.Edges {
		edges = append(edges, e[0]+"→"+e[1])
	}
	return "(" + strings.Join(g.Vertices, ",") + "|" + strings.Join(edges, ",") + ")"
}

// graphState is the mutable state: vertex set and edge set.
type graphState struct {
	vertices map[string]bool
	edges    map[[2]string]bool
}

// GraphSpec is the directed-graph UQ-ADT with referential integrity.
type GraphSpec struct{}

// Graph returns the directed-graph UQ-ADT.
func Graph() GraphSpec { return GraphSpec{} }

// Name implements UQADT.
func (GraphSpec) Name() string { return "graph" }

// Initial implements UQADT.
func (GraphSpec) Initial() State {
	return &graphState{vertices: map[string]bool{}, edges: map[[2]string]bool{}}
}

// Apply implements UQADT.
func (GraphSpec) Apply(s State, u Update) State {
	g := s.(*graphState)
	switch op := u.(type) {
	case AddV:
		g.vertices[op.V] = true
	case RemV:
		delete(g.vertices, op.V)
		for e := range g.edges {
			if e[0] == op.V || e[1] == op.V {
				delete(g.edges, e)
			}
		}
	case AddE:
		if g.vertices[op.U] && g.vertices[op.V] {
			g.edges[[2]string{op.U, op.V}] = true
		}
	case RemE:
		delete(g.edges, [2]string{op.U, op.V})
	default:
		panic(fmt.Sprintf("spec: graph does not recognize update %T", u))
	}
	return g
}

// Clone implements UQADT.
func (GraphSpec) Clone(s State) State {
	g := s.(*graphState)
	c := &graphState{
		vertices: make(map[string]bool, len(g.vertices)),
		edges:    make(map[[2]string]bool, len(g.edges)),
	}
	for v := range g.vertices {
		c.vertices[v] = true
	}
	for e := range g.edges {
		c.edges[e] = true
	}
	return c
}

// Query implements UQADT.
func (GraphSpec) Query(s State, in QueryInput) QueryOutput {
	if _, ok := in.(ReadGraph); !ok {
		panic(fmt.Sprintf("spec: graph does not recognize query %T", in))
	}
	return s.(*graphState).value()
}

func (g *graphState) value() GraphVal {
	out := GraphVal{}
	for v := range g.vertices {
		out.Vertices = append(out.Vertices, v)
	}
	sort.Strings(out.Vertices)
	for e := range g.edges {
		out.Edges = append(out.Edges, e)
	}
	sort.Slice(out.Edges, func(i, j int) bool {
		if out.Edges[i][0] != out.Edges[j][0] {
			return out.Edges[i][0] < out.Edges[j][0]
		}
		return out.Edges[i][1] < out.Edges[j][1]
	})
	return out
}

// EqualOutput implements UQADT.
func (GraphSpec) EqualOutput(a, b QueryOutput) bool {
	ga, ok := a.(GraphVal)
	if !ok {
		return false
	}
	gb, ok := b.(GraphVal)
	if !ok {
		return false
	}
	return ga.String() == gb.String()
}

// KeyState implements UQADT.
func (GraphSpec) KeyState(s State) string { return s.(*graphState).value().String() }

// ApplyUndo implements Undoable. RemV's undo must restore the removed
// incident edges, not only the vertex.
func (sp GraphSpec) ApplyUndo(s State, u Update) (State, Undo) {
	g := s.(*graphState)
	switch op := u.(type) {
	case AddV:
		if g.vertices[op.V] {
			return g, func(t State) State { return t }
		}
		g.vertices[op.V] = true
		v := op.V
		return g, func(t State) State {
			delete(t.(*graphState).vertices, v)
			return t
		}
	case RemV:
		if !g.vertices[op.V] {
			return g, func(t State) State { return t }
		}
		var removed [][2]string
		for e := range g.edges {
			if e[0] == op.V || e[1] == op.V {
				removed = append(removed, e)
				delete(g.edges, e)
			}
		}
		delete(g.vertices, op.V)
		v := op.V
		return g, func(t State) State {
			tg := t.(*graphState)
			tg.vertices[v] = true
			for _, e := range removed {
				tg.edges[e] = true
			}
			return t
		}
	case AddE:
		e := [2]string{op.U, op.V}
		if !g.vertices[op.U] || !g.vertices[op.V] || g.edges[e] {
			return g, func(t State) State { return t }
		}
		g.edges[e] = true
		return g, func(t State) State {
			delete(t.(*graphState).edges, e)
			return t
		}
	case RemE:
		e := [2]string{op.U, op.V}
		if !g.edges[e] {
			return g, func(t State) State { return t }
		}
		delete(g.edges, e)
		return g, func(t State) State {
			t.(*graphState).edges[e] = true
			return t
		}
	default:
		panic(fmt.Sprintf("spec: graph does not recognize update %T", u))
	}
}

// ExplainState implements StateExplainer: the graph read reveals the
// whole state, and the state must itself satisfy referential
// integrity.
func (sp GraphSpec) ExplainState(obs []Observation) (State, bool) {
	if len(obs) == 0 {
		return sp.Initial(), true
	}
	first, ok := obs[0].Out.(GraphVal)
	if !ok {
		return nil, false
	}
	for _, o := range obs[1:] {
		if !sp.EqualOutput(first, o.Out) {
			return nil, false
		}
	}
	g := sp.Initial().(*graphState)
	for _, v := range first.Vertices {
		g.vertices[v] = true
	}
	for _, e := range first.Edges {
		if !g.vertices[e[0]] || !g.vertices[e[1]] {
			return nil, false // dangling edge: no reachable or legal state
		}
		g.edges[e] = true
	}
	return g, true
}

// EncodeUpdate implements Codec. Wire format: tag byte, then the
// NUL-separated operands.
func (sp GraphSpec) EncodeUpdate(u Update) ([]byte, error) {
	return sp.AppendUpdate(nil, u)
}

// AppendUpdate implements AppendCodec.
func (GraphSpec) AppendUpdate(dst []byte, u Update) ([]byte, error) {
	appendEdge := func(dst []byte, tag byte, from, to string) []byte {
		dst = append(dst, tag)
		dst = append(dst, from...)
		dst = append(dst, 0)
		return append(dst, to...)
	}
	switch op := u.(type) {
	case AddV:
		return append(append(dst, 'v'), op.V...), nil
	case RemV:
		return append(append(dst, 'V'), op.V...), nil
	case AddE:
		return appendEdge(dst, 'e', op.U, op.V), nil
	case RemE:
		return appendEdge(dst, 'E', op.U, op.V), nil
	default:
		return nil, fmt.Errorf("spec: graph does not recognize update %T", u)
	}
}

// DecodeUpdate implements Codec.
func (GraphSpec) DecodeUpdate(b []byte) (Update, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("spec: empty graph update")
	}
	body := string(b[1:])
	switch b[0] {
	case 'v':
		return AddV{V: body}, nil
	case 'V':
		return RemV{V: body}, nil
	case 'e', 'E':
		u, v, ok := strings.Cut(body, "\x00")
		if !ok {
			return nil, fmt.Errorf("spec: malformed graph edge update")
		}
		if b[0] == 'e' {
			return AddE{U: u, V: v}, nil
		}
		return RemE{U: u, V: v}, nil
	default:
		return nil, fmt.Errorf("spec: unknown graph update tag %q", b[0])
	}
}
