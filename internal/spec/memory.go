package spec

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// WriteKey is the memory update write(x, v).
type WriteKey struct {
	K string
	V string
}

// String renders the update, e.g. "W(x,1)".
func (w WriteKey) String() string { return fmt.Sprintf("W(%s,%s)", w.K, w.V) }

// ReadKey is the memory query read(x): it returns the last value
// written to register x, or the initial value.
type ReadKey struct{ K string }

// String renders the query input, e.g. "R(x)".
func (r ReadKey) String() string { return fmt.Sprintf("R(%s)", r.K) }

// MemorySpec is the shared memory of Algorithm 2: a set X of registers
// holding values from V, with per-register writes and reads. States are
// map[string]string holding only explicitly written registers; reads of
// unwritten registers return Init.
type MemorySpec struct {
	// Init is the initial value v0 of every register.
	Init string
}

// Memory returns the register-map UQ-ADT with initial value v0.
func Memory(v0 string) MemorySpec { return MemorySpec{Init: v0} }

// Name implements UQADT.
func (MemorySpec) Name() string { return "memory" }

// Initial implements UQADT.
func (MemorySpec) Initial() State { return map[string]string{} }

// Apply implements UQADT.
func (MemorySpec) Apply(s State, u Update) State {
	w, ok := u.(WriteKey)
	if !ok {
		panic(fmt.Sprintf("spec: memory does not recognize update %T", u))
	}
	m := s.(map[string]string)
	m[w.K] = w.V
	return m
}

// Clone implements UQADT.
func (MemorySpec) Clone(s State) State {
	m := s.(map[string]string)
	c := make(map[string]string, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// Query implements UQADT.
func (sp MemorySpec) Query(s State, in QueryInput) QueryOutput {
	r, ok := in.(ReadKey)
	if !ok {
		panic(fmt.Sprintf("spec: memory does not recognize query %T", in))
	}
	m := s.(map[string]string)
	if v, ok := m[r.K]; ok {
		return RegVal(v)
	}
	return RegVal(sp.Init)
}

// EqualOutput implements UQADT.
func (MemorySpec) EqualOutput(a, b QueryOutput) bool {
	va, ok := a.(RegVal)
	if !ok {
		return false
	}
	vb, ok := b.(RegVal)
	return ok && va == vb
}

// KeyState implements UQADT.
func (MemorySpec) KeyState(s State) string {
	m := s.(map[string]string)
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, m[k])
	}
	return b.String()
}

// ApplyUndo implements Undoable: a write's inverse restores the
// register's previous binding (or removes it if the register was
// unwritten).
func (MemorySpec) ApplyUndo(s State, u Update) (State, Undo) {
	w, ok := u.(WriteKey)
	if !ok {
		panic(fmt.Sprintf("spec: memory does not recognize update %T", u))
	}
	m := s.(map[string]string)
	prev, had := m[w.K]
	m[w.K] = w.V
	k := w.K
	return m, func(t State) State {
		tm := t.(map[string]string)
		if had {
			tm[k] = prev
		} else {
			delete(tm, k)
		}
		return t
	}
}

// ExplainState implements StateExplainer: each observation constrains
// one register; conflicting constraints on the same register are
// unsatisfiable. Registers observed at the initial value are left
// unwritten.
func (sp MemorySpec) ExplainState(obs []Observation) (State, bool) {
	m := map[string]string{}
	for _, o := range obs {
		r, ok := o.In.(ReadKey)
		if !ok {
			return nil, false
		}
		v, ok := o.Out.(RegVal)
		if !ok {
			return nil, false
		}
		if prev, seen := m[r.K]; seen && prev != string(v) {
			return nil, false
		}
		m[r.K] = string(v)
	}
	for k, v := range m {
		if v == sp.Init {
			delete(m, k)
		}
	}
	return m, true
}

// EncodeUpdate implements Codec. Wire format: uvarint key length, key
// bytes, value bytes.
func (sp MemorySpec) EncodeUpdate(u Update) ([]byte, error) {
	return sp.AppendUpdate(nil, u)
}

// AppendUpdate implements AppendCodec.
func (MemorySpec) AppendUpdate(dst []byte, u Update) ([]byte, error) {
	w, ok := u.(WriteKey)
	if !ok {
		return nil, fmt.Errorf("spec: memory does not recognize update %T", u)
	}
	var lenb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenb[:], uint64(len(w.K)))
	dst = append(dst, lenb[:n]...)
	dst = append(dst, w.K...)
	return append(dst, w.V...), nil
}

// DecodeUpdate implements Codec.
func (MemorySpec) DecodeUpdate(b []byte) (Update, error) {
	klen, read := binary.Uvarint(b)
	if read <= 0 || uint64(len(b)-read) < klen {
		return nil, fmt.Errorf("spec: malformed memory update")
	}
	rest := b[read:]
	return WriteKey{K: string(rest[:klen]), V: string(rest[klen:])}, nil
}
