package spec

import (
	"fmt"
	"sort"
)

// Ins is the insertion update I(v) of the set S_Val (Example 1).
type Ins struct{ V string }

// String renders the update in the paper's notation, e.g. "I(1)".
func (i Ins) String() string { return fmt.Sprintf("I(%s)", i.V) }

// Del is the deletion update D(v) of the set S_Val.
type Del struct{ V string }

// String renders the update in the paper's notation, e.g. "D(1)".
func (d Del) String() string { return fmt.Sprintf("D(%s)", d.V) }

// Read is the parameterless read query R of the set; it returns the
// whole content of the set as an Elems value.
type Read struct{}

// String renders the query input in the paper's notation "R".
func (Read) String() string { return "R" }

// SetSpec is the set object S_Val of Example 1: updates insert and
// delete single elements, the single query R returns the finite set of
// present elements. States are map[string]bool with only true entries.
type SetSpec struct{}

// Set returns the set UQ-ADT.
func Set() SetSpec { return SetSpec{} }

// Name implements UQADT.
func (SetSpec) Name() string { return "set" }

// Initial implements UQADT: the empty set.
func (SetSpec) Initial() State { return map[string]bool{} }

// Apply implements UQADT: T(s, I(v)) = s ∪ {v}, T(s, D(v)) = s \ {v}.
func (SetSpec) Apply(s State, u Update) State {
	m := s.(map[string]bool)
	switch op := u.(type) {
	case Ins:
		m[op.V] = true
	case Del:
		delete(m, op.V)
	default:
		panic(fmt.Sprintf("spec: set does not recognize update %T", u))
	}
	return m
}

// Clone implements UQADT.
func (SetSpec) Clone(s State) State {
	m := s.(map[string]bool)
	c := make(map[string]bool, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// Query implements UQADT: G(s, R) = s, rendered canonically.
func (SetSpec) Query(s State, in QueryInput) QueryOutput {
	if _, ok := in.(Read); !ok {
		panic(fmt.Sprintf("spec: set does not recognize query %T", in))
	}
	return setElems(s.(map[string]bool))
}

// EqualOutput implements UQADT.
func (SetSpec) EqualOutput(a, b QueryOutput) bool {
	ea, ok := a.(Elems)
	if !ok {
		return false
	}
	eb, ok := b.(Elems)
	if !ok {
		return false
	}
	return equalElems(ea, eb)
}

// KeyState implements UQADT.
func (SetSpec) KeyState(s State) string {
	return setElems(s.(map[string]bool)).String()
}

// ApplyUndo implements Undoable: the inverse of an insertion is a
// deletion unless the element was already present (then a no-op), and
// symmetrically for deletions.
func (sp SetSpec) ApplyUndo(s State, u Update) (State, Undo) {
	m := s.(map[string]bool)
	switch op := u.(type) {
	case Ins:
		if m[op.V] {
			return m, func(t State) State { return t }
		}
		m[op.V] = true
		v := op.V
		return m, func(t State) State {
			delete(t.(map[string]bool), v)
			return t
		}
	case Del:
		if !m[op.V] {
			return m, func(t State) State { return t }
		}
		delete(m, op.V)
		v := op.V
		return m, func(t State) State {
			t.(map[string]bool)[v] = true
			return t
		}
	default:
		panic(fmt.Sprintf("spec: set does not recognize update %T", u))
	}
}

// ExplainState implements StateExplainer: every read reveals the whole
// state, so all observations must report the same set, which is then
// the explaining state.
func (SetSpec) ExplainState(obs []Observation) (State, bool) {
	if len(obs) == 0 {
		return map[string]bool{}, true
	}
	first, ok := obs[0].Out.(Elems)
	if !ok {
		return nil, false
	}
	for _, o := range obs[1:] {
		e, ok := o.Out.(Elems)
		if !ok || !equalElems(first, e) {
			return nil, false
		}
	}
	m := make(map[string]bool, len(first))
	for _, v := range first {
		m[v] = true
	}
	return m, true
}

// EncodeUpdate implements Codec. Wire format: one tag byte ('I' or 'D')
// followed by the element bytes.
func (sp SetSpec) EncodeUpdate(u Update) ([]byte, error) {
	return sp.AppendUpdate(nil, u)
}

// AppendUpdate implements AppendCodec.
func (SetSpec) AppendUpdate(dst []byte, u Update) ([]byte, error) {
	switch op := u.(type) {
	case Ins:
		return append(append(dst, 'I'), op.V...), nil
	case Del:
		return append(append(dst, 'D'), op.V...), nil
	default:
		return nil, fmt.Errorf("spec: set does not recognize update %T", u)
	}
}

// DecodeUpdate implements Codec.
func (SetSpec) DecodeUpdate(b []byte) (Update, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("spec: empty set update")
	}
	switch b[0] {
	case 'I':
		return Ins{V: string(b[1:])}, nil
	case 'D':
		return Del{V: string(b[1:])}, nil
	default:
		return nil, fmt.Errorf("spec: unknown set update tag %q", b[0])
	}
}

// setElems renders a set state canonically.
func setElems(m map[string]bool) Elems {
	out := make([]string, 0, len(m))
	for k, present := range m {
		if present {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// GSetSpec is the grow-only set: the restriction of SetSpec to
// insertions. All its updates commute, making it a pure CRDT; the paper
// (§VII-C) observes that for such types the naive eager-apply
// implementation already achieves update consistency.
type GSetSpec struct{ SetSpec }

// GSet returns the grow-only set UQ-ADT.
func GSet() GSetSpec { return GSetSpec{} }

// Name implements UQADT.
func (GSetSpec) Name() string { return "gset" }

// Apply implements UQADT; deletions are rejected.
func (g GSetSpec) Apply(s State, u Update) State {
	if _, ok := u.(Del); ok {
		panic("spec: grow-only set does not support deletions")
	}
	return g.SetSpec.Apply(s, u)
}

// CommutativeUpdates implements Commutative.
func (GSetSpec) CommutativeUpdates() bool { return true }
