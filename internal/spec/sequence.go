package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// The sequence is the collaborative-editing object proper: elements
// inserted at positions. Positional updates are the textbook
// non-commutative case — InsAt(0,a) and InsAt(0,b) produce different
// documents in different orders, and a position may be stale by the
// time a remote update applies. The sequential specification makes
// every update a *total* function by clamping positions, so any
// linearization is executable; update consistency then guarantees all
// replicas converge to the same document.

// InsAt is the sequence update "insert v at position pos" (clamped to
// the current length).
type InsAt struct {
	Pos int
	V   string
}

// String renders the update, e.g. "InsAt(0,a)".
func (i InsAt) String() string { return fmt.Sprintf("InsAt(%d,%s)", i.Pos, i.V) }

// DelAt is the sequence update "delete the element at position pos"
// (no-op when out of range).
type DelAt struct{ Pos int }

// String renders the update.
func (d DelAt) String() string { return fmt.Sprintf("DelAt(%d)", d.Pos) }

// ReadSeq is the sequence query: it returns the whole sequence.
type ReadSeq struct{}

// String renders the query input.
func (ReadSeq) String() string { return "RS" }

// SequenceSpec is the positional-sequence UQ-ADT.
type SequenceSpec struct{}

// Sequence returns the positional-sequence UQ-ADT.
func Sequence() SequenceSpec { return SequenceSpec{} }

// Name implements UQADT.
func (SequenceSpec) Name() string { return "sequence" }

// Initial implements UQADT.
func (SequenceSpec) Initial() State { return []string(nil) }

// Apply implements UQADT.
func (SequenceSpec) Apply(s State, u Update) State {
	seq := s.([]string)
	switch op := u.(type) {
	case InsAt:
		pos := clamp(op.Pos, len(seq))
		seq = append(seq, "")
		copy(seq[pos+1:], seq[pos:])
		seq[pos] = op.V
		return seq
	case DelAt:
		if op.Pos < 0 || op.Pos >= len(seq) {
			return seq
		}
		return append(seq[:op.Pos], seq[op.Pos+1:]...)
	default:
		panic(fmt.Sprintf("spec: sequence does not recognize update %T", u))
	}
}

func clamp(pos, n int) int {
	if pos < 0 {
		return 0
	}
	if pos > n {
		return n
	}
	return pos
}

// Clone implements UQADT.
func (SequenceSpec) Clone(s State) State {
	return append([]string(nil), s.([]string)...)
}

// Query implements UQADT.
func (SequenceSpec) Query(s State, in QueryInput) QueryOutput {
	if _, ok := in.(ReadSeq); !ok {
		panic(fmt.Sprintf("spec: sequence does not recognize query %T", in))
	}
	return Lines(append([]string(nil), s.([]string)...))
}

// EqualOutput implements UQADT.
func (SequenceSpec) EqualOutput(a, b QueryOutput) bool {
	return LogSpec{}.EqualOutput(a, b)
}

// KeyState implements UQADT.
func (SequenceSpec) KeyState(s State) string {
	return strings.Join(s.([]string), "\x1f")
}

// ApplyUndo implements Undoable.
func (sp SequenceSpec) ApplyUndo(s State, u Update) (State, Undo) {
	seq := s.([]string)
	switch op := u.(type) {
	case InsAt:
		pos := clamp(op.Pos, len(seq))
		next := sp.Apply(seq, op).([]string)
		return next, func(t State) State {
			ts := t.([]string)
			return append(ts[:pos], ts[pos+1:]...)
		}
	case DelAt:
		if op.Pos < 0 || op.Pos >= len(seq) {
			return seq, func(t State) State { return t }
		}
		removed := seq[op.Pos]
		pos := op.Pos
		next := sp.Apply(seq, op).([]string)
		return next, func(t State) State {
			ts := t.([]string)
			ts = append(ts, "")
			copy(ts[pos+1:], ts[pos:])
			ts[pos] = removed
			return ts
		}
	default:
		panic(fmt.Sprintf("spec: sequence does not recognize update %T", u))
	}
}

// ExplainState implements StateExplainer.
func (SequenceSpec) ExplainState(obs []Observation) (State, bool) {
	if len(obs) == 0 {
		return []string(nil), true
	}
	first, ok := obs[0].Out.(Lines)
	if !ok {
		return nil, false
	}
	sp := SequenceSpec{}
	for _, o := range obs[1:] {
		if !sp.EqualOutput(first, o.Out) {
			return nil, false
		}
	}
	return append([]string(nil), first...), true
}

// EncodeUpdate implements Codec. Wire format: tag byte, decimal
// position, NUL, value.
func (sp SequenceSpec) EncodeUpdate(u Update) ([]byte, error) {
	return sp.AppendUpdate(nil, u)
}

// AppendUpdate implements AppendCodec.
func (SequenceSpec) AppendUpdate(dst []byte, u Update) ([]byte, error) {
	switch op := u.(type) {
	case InsAt:
		dst = append(dst, 'i')
		dst = strconv.AppendInt(dst, int64(op.Pos), 10)
		dst = append(dst, 0)
		return append(dst, op.V...), nil
	case DelAt:
		dst = append(dst, 'd')
		return strconv.AppendInt(dst, int64(op.Pos), 10), nil
	default:
		return nil, fmt.Errorf("spec: sequence does not recognize update %T", u)
	}
}

// DecodeUpdate implements Codec.
func (SequenceSpec) DecodeUpdate(b []byte) (Update, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("spec: empty sequence update")
	}
	body := string(b[1:])
	switch b[0] {
	case 'i':
		posStr, v, ok := strings.Cut(body, "\x00")
		if !ok {
			return nil, fmt.Errorf("spec: malformed sequence insert")
		}
		var pos int
		if _, err := fmt.Sscanf(posStr, "%d", &pos); err != nil {
			return nil, fmt.Errorf("spec: bad insert position %q", posStr)
		}
		return InsAt{Pos: pos, V: v}, nil
	case 'd':
		var pos int
		if _, err := fmt.Sscanf(body, "%d", &pos); err != nil {
			return nil, fmt.Errorf("spec: bad delete position %q", body)
		}
		return DelAt{Pos: pos}, nil
	default:
		return nil, fmt.Errorf("spec: unknown sequence update tag %q", b[0])
	}
}
