package spec

import "testing"

// TestQueryKeyerAllBuiltins: every built-in spec canonicalizes its
// query inputs — its own queries are cacheable, a foreign input is
// not, and distinct query types never share a cache key.
func TestQueryKeyerAllBuiltins(t *testing.T) {
	queries := map[string][]QueryInput{
		"set":        {Read{}},
		"gset":       {Read{}},
		"register":   {Read{}},
		"counter":    {Read{}},
		"countermap": {ReadCtr{K: "a"}, ReadCtr{K: "b"}, ReadAllCtrs{}},
		"memory":     {ReadKey{K: "a"}, ReadKey{K: "b"}},
		"queue":      {Front{}},
		"stack":      {Top{}},
		"log":        {ReadLog{}},
		"sequence":   {ReadSeq{}},
		"graph":      {ReadGraph{}},
	}
	for _, name := range Names() {
		adt, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		keyer, ok := adt.(QueryKeyer)
		if !ok {
			t.Fatalf("%s does not implement QueryKeyer", name)
		}
		ins, ok := queries[name]
		if !ok {
			t.Fatalf("no query inputs listed for %s — extend the test", name)
		}
		seen := map[QueryCacheKey]QueryInput{}
		for _, in := range ins {
			key, ok := keyer.QueryInputKey(in)
			if !ok {
				t.Fatalf("%s: %v not cacheable", name, in)
			}
			if prev, dup := seen[key]; dup {
				t.Fatalf("%s: %v and %v share cache key %v", name, prev, in, key)
			}
			seen[key] = in
			again, _ := keyer.QueryInputKey(in)
			if again != key {
				t.Fatalf("%s: %v keyed %v then %v", name, in, key, again)
			}
		}
		if _, ok := keyer.QueryInputKey(struct{ bogus int }{1}); ok {
			t.Fatalf("%s: foreign query input reported cacheable", name)
		}
	}
}

// TestQueryCacheKeyNoCollisionAcrossKinds: countermap's keyed read of
// a pathological counter name must not collide with the whole-map
// read — the Kind byte, not the key string, separates them.
func TestQueryCacheKeyNoCollisionAcrossKinds(t *testing.T) {
	keyer := CounterMap()
	for _, name := range []string{"", "*", "all", "\x00"} {
		keyed, _ := keyer.QueryInputKey(ReadCtr{K: name})
		all, _ := keyer.QueryInputKey(ReadAllCtrs{})
		if keyed == all {
			t.Fatalf("ReadCtr{%q} collides with ReadAllCtrs: %v", name, keyed)
		}
	}
}

// TestUnmergeFromInvertsMergeInto: for every partitionable spec,
// unmerging a previously merged contribution restores the original
// state.
func TestUnmergeFromInvertsMergeInto(t *testing.T) {
	cases := []struct {
		adt  UQADT
		base []Update
		src  []Update
	}{
		{Set(), []Update{Ins{V: "a"}, Ins{V: "b"}}, []Update{Ins{V: "c"}, Ins{V: "d"}}},
		{Memory("0"), []Update{WriteKey{K: "x", V: "1"}}, []Update{WriteKey{K: "y", V: "2"}}},
		{CounterMap(), []Update{AddKey{K: "x", N: 3}}, []Update{AddKey{K: "y", N: 4}, AddKey{K: "z", N: -1}}},
	}
	for _, tc := range cases {
		part, ok := tc.adt.(Partitionable)
		if !ok {
			t.Fatalf("%s not partitionable", tc.adt.Name())
		}
		base := Replay(tc.adt, tc.base)
		want := tc.adt.KeyState(base)
		src := Replay(tc.adt, tc.src)
		merged := part.MergeInto(tc.adt.Clone(base), src)
		restored := part.UnmergeFrom(merged, src)
		if got := tc.adt.KeyState(restored); got != want {
			t.Fatalf("%s: unmerge(merge(base, src), src) = %s, want %s", tc.adt.Name(), got, want)
		}
	}
}
