package spec

import (
	"fmt"
	"strings"
)

// Bottom is the query output returned by Front/Top on an empty
// queue or stack.
const Bottom = RegVal("⊥")

// Enq is the queue update enqueue(v).
type Enq struct{ V string }

// String renders the update, e.g. "Enq(1)".
func (e Enq) String() string { return fmt.Sprintf("Enq(%s)", e.V) }

// DeqFront is the queue update "delete front". The paper (§I) requires
// mixed update-query operations such as dequeue to be separated into a
// query half ("lookup front", the Front query) and an update half
// (this operation); deleting from an empty queue is a no-op.
type DeqFront struct{}

// String renders the update.
func (DeqFront) String() string { return "Deq" }

// Front is the queue query "lookup front": the oldest enqueued value
// still present, or Bottom when the queue is empty.
type Front struct{}

// String renders the query input.
func (Front) String() string { return "Front" }

// QueueSpec is a FIFO queue presented as a UQ-ADT. States are []string
// from front to back.
type QueueSpec struct{}

// Queue returns the FIFO queue UQ-ADT.
func Queue() QueueSpec { return QueueSpec{} }

// Name implements UQADT.
func (QueueSpec) Name() string { return "queue" }

// Initial implements UQADT.
func (QueueSpec) Initial() State { return []string(nil) }

// Apply implements UQADT.
func (QueueSpec) Apply(s State, u Update) State {
	q := s.([]string)
	switch u.(type) {
	case Enq:
		return append(q, u.(Enq).V)
	case DeqFront:
		if len(q) == 0 {
			return q
		}
		return q[1:]
	default:
		panic(fmt.Sprintf("spec: queue does not recognize update %T", u))
	}
}

// Clone implements UQADT.
func (QueueSpec) Clone(s State) State {
	q := s.([]string)
	return append([]string(nil), q...)
}

// Query implements UQADT.
func (QueueSpec) Query(s State, in QueryInput) QueryOutput {
	if _, ok := in.(Front); !ok {
		panic(fmt.Sprintf("spec: queue does not recognize query %T", in))
	}
	q := s.([]string)
	if len(q) == 0 {
		return Bottom
	}
	return RegVal(q[0])
}

// EqualOutput implements UQADT.
func (QueueSpec) EqualOutput(a, b QueryOutput) bool {
	va, ok := a.(RegVal)
	if !ok {
		return false
	}
	vb, ok := b.(RegVal)
	return ok && va == vb
}

// KeyState implements UQADT.
func (QueueSpec) KeyState(s State) string {
	return strings.Join(s.([]string), "|")
}

// ExplainState implements StateExplainer: all Front observations must
// agree (G is single-valued); the witness state is the one-element
// queue holding that value, or the empty queue for Bottom.
func (QueueSpec) ExplainState(obs []Observation) (State, bool) {
	return explainFrontTop(obs, func(in QueryInput) bool {
		_, ok := in.(Front)
		return ok
	})
}

// ApplyUndo implements Undoable: an enqueue's inverse drops the back;
// a delete-front's inverse re-prepends the removed element.
func (sp QueueSpec) ApplyUndo(s State, u Update) (State, Undo) {
	q := s.([]string)
	switch u.(type) {
	case Enq:
		next := sp.Apply(q, u).([]string)
		return next, func(t State) State {
			ts := t.([]string)
			return ts[:len(ts)-1]
		}
	case DeqFront:
		if len(q) == 0 {
			return q, func(t State) State { return t }
		}
		front := q[0]
		return q[1:], func(t State) State {
			return append([]string{front}, t.([]string)...)
		}
	default:
		panic(fmt.Sprintf("spec: queue does not recognize update %T", u))
	}
}

// EncodeUpdate implements Codec: 'e'+value for enqueue, 'd' for
// delete-front.
func (sp QueueSpec) EncodeUpdate(u Update) ([]byte, error) {
	return sp.AppendUpdate(nil, u)
}

// AppendUpdate implements AppendCodec.
func (QueueSpec) AppendUpdate(dst []byte, u Update) ([]byte, error) {
	switch op := u.(type) {
	case Enq:
		return append(append(dst, 'e'), op.V...), nil
	case DeqFront:
		return append(dst, 'd'), nil
	default:
		return nil, fmt.Errorf("spec: queue does not recognize update %T", u)
	}
}

// DecodeUpdate implements Codec.
func (QueueSpec) DecodeUpdate(b []byte) (Update, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("spec: empty queue update")
	}
	switch b[0] {
	case 'e':
		return Enq{V: string(b[1:])}, nil
	case 'd':
		return DeqFront{}, nil
	default:
		return nil, fmt.Errorf("spec: unknown queue update tag %q", b[0])
	}
}

// EncodeState implements StateCodec.
func (QueueSpec) EncodeState(s State) ([]byte, error) {
	return encodeStrings(s.([]string)), nil
}

// DecodeState implements StateCodec.
func (QueueSpec) DecodeState(b []byte) (State, error) {
	items, _, err := decodeStrings(b)
	if err != nil {
		return nil, err
	}
	return items, nil
}

// Push is the stack update push(v).
type Push struct{ V string }

// String renders the update, e.g. "Push(1)".
func (p Push) String() string { return fmt.Sprintf("Push(%s)", p.V) }

// PopTop is the stack update "delete top" — the update half of pop, as
// prescribed in §I for the stack. Popping an empty stack is a no-op.
type PopTop struct{}

// String renders the update.
func (PopTop) String() string { return "Pop" }

// Top is the stack query "lookup top".
type Top struct{}

// String renders the query input.
func (Top) String() string { return "Top" }

// StackSpec is a LIFO stack presented as a UQ-ADT. States are []string
// from bottom to top.
type StackSpec struct{}

// Stack returns the LIFO stack UQ-ADT.
func Stack() StackSpec { return StackSpec{} }

// Name implements UQADT.
func (StackSpec) Name() string { return "stack" }

// Initial implements UQADT.
func (StackSpec) Initial() State { return []string(nil) }

// Apply implements UQADT.
func (StackSpec) Apply(s State, u Update) State {
	st := s.([]string)
	switch u.(type) {
	case Push:
		return append(st, u.(Push).V)
	case PopTop:
		if len(st) == 0 {
			return st
		}
		return st[:len(st)-1]
	default:
		panic(fmt.Sprintf("spec: stack does not recognize update %T", u))
	}
}

// Clone implements UQADT.
func (StackSpec) Clone(s State) State {
	st := s.([]string)
	return append([]string(nil), st...)
}

// Query implements UQADT.
func (StackSpec) Query(s State, in QueryInput) QueryOutput {
	if _, ok := in.(Top); !ok {
		panic(fmt.Sprintf("spec: stack does not recognize query %T", in))
	}
	st := s.([]string)
	if len(st) == 0 {
		return Bottom
	}
	return RegVal(st[len(st)-1])
}

// EqualOutput implements UQADT.
func (StackSpec) EqualOutput(a, b QueryOutput) bool {
	va, ok := a.(RegVal)
	if !ok {
		return false
	}
	vb, ok := b.(RegVal)
	return ok && va == vb
}

// KeyState implements UQADT.
func (StackSpec) KeyState(s State) string {
	return strings.Join(s.([]string), "|")
}

// ExplainState implements StateExplainer: all Top observations must
// agree; the witness state is the one-element stack holding that value,
// or the empty stack for Bottom.
func (StackSpec) ExplainState(obs []Observation) (State, bool) {
	return explainFrontTop(obs, func(in QueryInput) bool {
		_, ok := in.(Top)
		return ok
	})
}

// ApplyUndo implements Undoable: a push's inverse drops the top; a
// pop's inverse re-pushes the removed element.
func (sp StackSpec) ApplyUndo(s State, u Update) (State, Undo) {
	st := s.([]string)
	switch u.(type) {
	case Push:
		next := sp.Apply(st, u).([]string)
		return next, func(t State) State {
			ts := t.([]string)
			return ts[:len(ts)-1]
		}
	case PopTop:
		if len(st) == 0 {
			return st, func(t State) State { return t }
		}
		top := st[len(st)-1]
		return st[:len(st)-1], func(t State) State {
			return append(t.([]string), top)
		}
	default:
		panic(fmt.Sprintf("spec: stack does not recognize update %T", u))
	}
}

// EncodeUpdate implements Codec: 'p'+value for push, 'o' for pop-top.
func (sp StackSpec) EncodeUpdate(u Update) ([]byte, error) {
	return sp.AppendUpdate(nil, u)
}

// AppendUpdate implements AppendCodec.
func (StackSpec) AppendUpdate(dst []byte, u Update) ([]byte, error) {
	switch op := u.(type) {
	case Push:
		return append(append(dst, 'p'), op.V...), nil
	case PopTop:
		return append(dst, 'o'), nil
	default:
		return nil, fmt.Errorf("spec: stack does not recognize update %T", u)
	}
}

// DecodeUpdate implements Codec.
func (StackSpec) DecodeUpdate(b []byte) (Update, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("spec: empty stack update")
	}
	switch b[0] {
	case 'p':
		return Push{V: string(b[1:])}, nil
	case 'o':
		return PopTop{}, nil
	default:
		return nil, fmt.Errorf("spec: unknown stack update tag %q", b[0])
	}
}

// EncodeState implements StateCodec.
func (StackSpec) EncodeState(s State) ([]byte, error) {
	return encodeStrings(s.([]string)), nil
}

// DecodeState implements StateCodec.
func (StackSpec) DecodeState(b []byte) (State, error) {
	items, _, err := decodeStrings(b)
	if err != nil {
		return nil, err
	}
	return items, nil
}

// explainFrontTop is the shared explainer for single-peek query types:
// every observation must be the same RegVal; Bottom is explained by the
// empty sequence, a value v by the singleton sequence [v].
func explainFrontTop(obs []Observation, inOK func(QueryInput) bool) (State, bool) {
	if len(obs) == 0 {
		return []string(nil), true
	}
	var want RegVal
	for i, o := range obs {
		if !inOK(o.In) {
			return nil, false
		}
		v, ok := o.Out.(RegVal)
		if !ok {
			return nil, false
		}
		if i == 0 {
			want = v
		} else if v != want {
			return nil, false
		}
	}
	if want == Bottom {
		return []string(nil), true
	}
	return []string{string(want)}, true
}
