package spec

import (
	"fmt"
	"sort"
)

// builtin holds the named UQ-ADT constructors available to the CLI
// tools and the history JSON codec.
var builtin = map[string]func() UQADT{
	"set":        func() UQADT { return Set() },
	"gset":       func() UQADT { return GSet() },
	"register":   func() UQADT { return Register("") },
	"counter":    func() UQADT { return Counter() },
	"countermap": func() UQADT { return CounterMap() },
	"memory":     func() UQADT { return Memory("") },
	"queue":      func() UQADT { return Queue() },
	"stack":      func() UQADT { return Stack() },
	"log":        func() UQADT { return Log() },
	"graph":      func() UQADT { return Graph() },
	"sequence":   func() UQADT { return Sequence() },
}

// ByName returns the built-in UQ-ADT with the given name.
func ByName(name string) (UQADT, error) {
	ctor, ok := builtin[name]
	if !ok {
		return nil, fmt.Errorf("spec: unknown data type %q (known: %v)", name, Names())
	}
	return ctor(), nil
}

// Names lists the built-in UQ-ADT names in sorted order.
func Names() []string {
	names := make([]string, 0, len(builtin))
	for n := range builtin {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// IsCommutative reports whether all updates of the given UQ-ADT
// commute, as declared through the optional Commutative interface.
func IsCommutative(adt UQADT) bool {
	c, ok := adt.(Commutative)
	return ok && c.CommutativeUpdates()
}
