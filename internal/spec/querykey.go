package spec

// QueryCacheKey is the canonical cache key of a query input. Kind
// discriminates the query types of one UQ-ADT (so a keyed read and a
// whole-state read can never collide, whatever their key strings);
// Key carries the addressed key for keyed queries and is empty
// otherwise. The struct is a valid Go map key and building one never
// allocates, which is what lets a version-keyed query-output cache
// serve repeat reads allocation-free.
type QueryCacheKey struct {
	Kind uint8
	Key  string
}

// QueryKeyer is an optional extension of UQADT implemented by
// specifications whose query inputs canonicalize to a QueryCacheKey:
// two inputs with the same cache key must produce the same output in
// every state (so a cached output may be returned for either).
// ok=false marks an input that must not be cached — the replica then
// evaluates it against the engine state on every call.
//
// Strong update consistency is what makes output caching sound at the
// replica layer: the query output is a pure function of the replica's
// update log (base + sorted live entries), so a cached output is valid
// exactly as long as the log's version is unchanged.
type QueryKeyer interface {
	// QueryInputKey returns the canonical cache key for the query
	// input, or ok=false when the input is not cacheable.
	QueryInputKey(in QueryInput) (key QueryCacheKey, ok bool)
}

// QueryInputKey implements QueryKeyer: the set's only query is the
// whole-state read R.
func (SetSpec) QueryInputKey(in QueryInput) (QueryCacheKey, bool) {
	if _, ok := in.(Read); ok {
		return QueryCacheKey{}, true
	}
	return QueryCacheKey{}, false
}

// QueryInputKey implements QueryKeyer: the register's only query is R.
func (RegisterSpec) QueryInputKey(in QueryInput) (QueryCacheKey, bool) {
	if _, ok := in.(Read); ok {
		return QueryCacheKey{}, true
	}
	return QueryCacheKey{}, false
}

// QueryInputKey implements QueryKeyer: the counter's only query is R.
func (CounterSpec) QueryInputKey(in QueryInput) (QueryCacheKey, bool) {
	if _, ok := in.(Read); ok {
		return QueryCacheKey{}, true
	}
	return QueryCacheKey{}, false
}

// QueryInputKey implements QueryKeyer: a keyed counter read caches
// under its counter name; the whole-map read under its own kind.
func (CounterMapSpec) QueryInputKey(in QueryInput) (QueryCacheKey, bool) {
	switch q := in.(type) {
	case ReadCtr:
		return QueryCacheKey{Kind: 0, Key: q.K}, true
	case ReadAllCtrs:
		return QueryCacheKey{Kind: 1}, true
	}
	return QueryCacheKey{}, false
}

// QueryInputKey implements QueryKeyer: a memory read caches under its
// register name.
func (MemorySpec) QueryInputKey(in QueryInput) (QueryCacheKey, bool) {
	if r, ok := in.(ReadKey); ok {
		return QueryCacheKey{Key: r.K}, true
	}
	return QueryCacheKey{}, false
}

// QueryInputKey implements QueryKeyer: the queue's only query is
// front.
func (QueueSpec) QueryInputKey(in QueryInput) (QueryCacheKey, bool) {
	if _, ok := in.(Front); ok {
		return QueryCacheKey{}, true
	}
	return QueryCacheKey{}, false
}

// QueryInputKey implements QueryKeyer: the stack's only query is top.
func (StackSpec) QueryInputKey(in QueryInput) (QueryCacheKey, bool) {
	if _, ok := in.(Top); ok {
		return QueryCacheKey{}, true
	}
	return QueryCacheKey{}, false
}

// QueryInputKey implements QueryKeyer: the log's only query reads the
// whole line list.
func (LogSpec) QueryInputKey(in QueryInput) (QueryCacheKey, bool) {
	if _, ok := in.(ReadLog); ok {
		return QueryCacheKey{}, true
	}
	return QueryCacheKey{}, false
}

// QueryInputKey implements QueryKeyer: the sequence's only query reads
// the whole sequence.
func (SequenceSpec) QueryInputKey(in QueryInput) (QueryCacheKey, bool) {
	if _, ok := in.(ReadSeq); ok {
		return QueryCacheKey{}, true
	}
	return QueryCacheKey{}, false
}

// QueryInputKey implements QueryKeyer: the graph's only query reads
// the whole graph.
func (GraphSpec) QueryInputKey(in QueryInput) (QueryCacheKey, bool) {
	if _, ok := in.(ReadGraph); ok {
		return QueryCacheKey{}, true
	}
	return QueryCacheKey{}, false
}
