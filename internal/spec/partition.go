package spec

import "fmt"

// Partitionable is implemented by specifications whose state decomposes
// into independent per-key components: every update addresses exactly
// one key, the transition function never lets one key's updates affect
// another key's component, and the whole state is the disjoint union of
// the components.
//
// For such types update consistency composes per key: running
// Algorithm 1 once per key (or once per *shard* of keys, as
// core.ShardedReplica does) yields, for each key, the state reached by
// a total order of that key's updates, and any interleaving of those
// per-key orders is a single sequential execution producing the merged
// state. This is the observation that lets partitionable objects scale
// updates across shards without weakening the paper's guarantee — the
// per-shard constructions stay wait-free and strong update consistent,
// and their union is explainable by one total order of all updates.
//
// Implementations must satisfy, for all states s and updates u, v with
// UpdateKey(u) ≠ UpdateKey(v):
//
//   - independence: T(T(s,u),v) = T(T(s,v),u), and
//   - locality: a query with QueryKey k depends only on the updates
//     with UpdateKey k.
type Partitionable interface {
	// UpdateKey returns the key update u addresses.
	UpdateKey(u Update) string
	// QueryKey returns the key query input in addresses, or ok=false
	// for a query that observes the whole state (such a query must be
	// evaluated on the merged state of all shards).
	QueryKey(in QueryInput) (key string, ok bool)
	// MergeInto folds the key components of src into dst and returns
	// dst. Callers guarantee dst and src hold disjoint key sets; src is
	// read-only and must not be mutated or aliased by the result.
	MergeInto(dst, src State) State
	// UnmergeFrom removes src's key components from dst and returns
	// dst — the inverse of MergeInto(dst, src). Callers guarantee src
	// is exactly a state previously merged into dst (same key set);
	// src is read-only. The sharded merged-state cache uses it to
	// replace one shard's contribution without re-folding the others.
	UnmergeFrom(dst, src State) State
	// ExtractRange removes from s every key component the keep
	// predicate selects and returns those components as a fresh state,
	// together with the number of components moved (0 with a nil
	// extracted state when nothing matched). It is the per-key split of
	// a state that live resharding needs: a shard's compacted base is
	// partitioned into one extracted state per destination shard, and
	// after extracting every range the source state is empty. s may be
	// mutated freely (the caller is discarding it); the extracted state
	// must share no mutable structure with s.
	ExtractRange(s State, keep func(key string) bool) (State, int)
}

// extractMap is the shared ExtractRange body for the map-backed
// partitionable states: move the entries keep selects out of src into
// a fresh map, allocated lazily so a miss costs nothing.
func extractMap[V any](src map[string]V, keep func(key string) bool) (map[string]V, int) {
	var out map[string]V
	for k, v := range src {
		if !keep(k) {
			continue
		}
		if out == nil {
			out = map[string]V{}
		}
		out[k] = v
		delete(src, k)
	}
	return out, len(out)
}

// UpdateKey implements Partitionable: a set element is its own key.
func (SetSpec) UpdateKey(u Update) string {
	switch op := u.(type) {
	case Ins:
		return op.V
	case Del:
		return op.V
	default:
		panic(fmt.Sprintf("spec: set does not recognize update %T", u))
	}
}

// QueryKey implements Partitionable: the read R observes the whole set.
func (SetSpec) QueryKey(in QueryInput) (string, bool) { return "", false }

// MergeInto implements Partitionable: union of disjoint element sets
// (set states hold only present elements, so every entry copies over).
func (SetSpec) MergeInto(dst, src State) State {
	d := dst.(map[string]bool)
	for k, v := range src.(map[string]bool) {
		d[k] = v
	}
	return d
}

// UnmergeFrom implements Partitionable: remove src's elements.
func (SetSpec) UnmergeFrom(dst, src State) State {
	d := dst.(map[string]bool)
	for k := range src.(map[string]bool) {
		delete(d, k)
	}
	return d
}

// ExtractRange implements Partitionable: move the selected elements
// into a fresh set state.
func (SetSpec) ExtractRange(s State, keep func(key string) bool) (State, int) {
	out, n := extractMap(s.(map[string]bool), keep)
	if n == 0 {
		return nil, 0
	}
	return out, n
}

// UpdateKey implements Partitionable: a write addresses its register.
func (MemorySpec) UpdateKey(u Update) string {
	w, ok := u.(WriteKey)
	if !ok {
		panic(fmt.Sprintf("spec: memory does not recognize update %T", u))
	}
	return w.K
}

// QueryKey implements Partitionable: a read addresses its register.
func (MemorySpec) QueryKey(in QueryInput) (string, bool) {
	r, ok := in.(ReadKey)
	if !ok {
		return "", false
	}
	return r.K, true
}

// MergeInto implements Partitionable: union of disjoint register maps.
func (MemorySpec) MergeInto(dst, src State) State {
	d := dst.(map[string]string)
	for k, v := range src.(map[string]string) {
		d[k] = v
	}
	return d
}

// UnmergeFrom implements Partitionable: remove src's registers.
func (MemorySpec) UnmergeFrom(dst, src State) State {
	d := dst.(map[string]string)
	for k := range src.(map[string]string) {
		delete(d, k)
	}
	return d
}

// ExtractRange implements Partitionable: move the selected registers
// into a fresh register map.
func (MemorySpec) ExtractRange(s State, keep func(key string) bool) (State, int) {
	out, n := extractMap(s.(map[string]string), keep)
	if n == 0 {
		return nil, 0
	}
	return out, n
}
