package spec

import (
	"math/rand"
	"testing"
)

func TestCounterMapSequential(t *testing.T) {
	adt := CounterMap()
	s := adt.Initial()
	s = adt.Apply(s, AddKey{K: "a", N: 3})
	s = adt.Apply(s, AddKey{K: "b", N: -2})
	s = adt.Apply(s, AddKey{K: "a", N: 1})
	if got := adt.Query(s, ReadCtr{K: "a"}); got != CtrVal(4) {
		t.Fatalf("R(a) = %v, want 4", got)
	}
	if got := adt.Query(s, ReadCtr{K: "b"}); got != CtrVal(-2) {
		t.Fatalf("R(b) = %v, want -2", got)
	}
	if got := adt.Query(s, ReadCtr{K: "zzz"}); got != CtrVal(0) {
		t.Fatalf("untouched counter reads %v, want 0", got)
	}
	all := adt.Query(s, ReadAllCtrs{}).(Elems)
	if all.String() != "{a=4, b=-2}" {
		t.Fatalf("R* = %v", all)
	}
	if !ValidSequential(adt, []Op{
		UpdateOp(AddKey{K: "a", N: 4}),
		QueryOp(ReadCtr{K: "a"}, CtrVal(4)),
		QueryOp(ReadCtr{K: "b"}, CtrVal(0)),
	}) {
		t.Fatal("valid sequential countermap word rejected")
	}
}

func TestCounterMapCodecRoundTrip(t *testing.T) {
	adt := CounterMap()
	for _, u := range []AddKey{
		{K: "a", N: 1}, {K: "", N: -7}, {K: "long-counter-name", N: 1 << 40},
	} {
		b, err := adt.EncodeUpdate(u)
		if err != nil {
			t.Fatal(err)
		}
		got, err := adt.DecodeUpdate(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != Update(u) {
			t.Fatalf("roundtrip %v -> %v", u, got)
		}
	}
	if _, err := adt.DecodeUpdate(nil); err == nil {
		t.Fatal("decoding empty payload must fail")
	}
}

func TestCounterMapUndo(t *testing.T) {
	adt := CounterMap()
	s := adt.Initial()
	s, undoA := adt.ApplyUndo(s, AddKey{K: "a", N: 5})
	s, undoB := adt.ApplyUndo(s, AddKey{K: "a", N: 2})
	s = undoB(s)
	if got := adt.Query(s, ReadCtr{K: "a"}); got != CtrVal(5) {
		t.Fatalf("after undo, R(a) = %v, want 5", got)
	}
	s = undoA(s)
	if key := adt.KeyState(s); key != "∅" {
		t.Fatalf("undoing the first touch must remove the counter, state %q", key)
	}
}

func TestCounterMapStateCodecRoundTrip(t *testing.T) {
	adt := CounterMap()
	s := adt.Initial()
	s = adt.Apply(s, AddKey{K: "x", N: -9})
	s = adt.Apply(s, AddKey{K: "y", N: 12})
	b, err := adt.EncodeState(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := adt.DecodeState(b)
	if err != nil {
		t.Fatal(err)
	}
	if adt.KeyState(got) != adt.KeyState(s) {
		t.Fatalf("state roundtrip: %s vs %s", adt.KeyState(got), adt.KeyState(s))
	}
}

// TestPartitionableContracts checks the Partitionable independence and
// locality contracts on every partitionable built-in: updates to
// distinct keys commute, and merging the per-key restrictions of a
// random update word reproduces the unsharded state.
func TestPartitionableContracts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := []string{"a", "b", "c", "d", "e"}
	gens := map[string]func() Update{
		"set": func() Update {
			k := keys[rng.Intn(len(keys))]
			if rng.Intn(2) == 0 {
				return Ins{V: k}
			}
			return Del{V: k}
		},
		"memory": func() Update {
			return WriteKey{K: keys[rng.Intn(len(keys))], V: keys[rng.Intn(len(keys))]}
		},
		"countermap": func() Update {
			return AddKey{K: keys[rng.Intn(len(keys))], N: int64(rng.Intn(5) - 2)}
		},
	}
	for name, gen := range gens {
		adt, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		part, ok := adt.(Partitionable)
		if !ok {
			t.Fatalf("%s must be Partitionable", name)
		}
		word := make([]Update, 40)
		for i := range word {
			word[i] = gen()
		}
		whole := Replay(adt, word)
		// Split the word by key, replay each slice independently, merge.
		byKey := map[string][]Update{}
		for _, u := range word {
			k := part.UpdateKey(u)
			byKey[k] = append(byKey[k], u)
		}
		merged := adt.Initial()
		for _, k := range keys {
			if us, ok := byKey[k]; ok {
				merged = part.MergeInto(merged, Replay(adt, us))
			}
		}
		if adt.KeyState(merged) != adt.KeyState(whole) {
			t.Fatalf("%s: per-key replay + merge %s differs from whole replay %s",
				name, adt.KeyState(merged), adt.KeyState(whole))
		}
	}
}

// TestQueryKeyRouting checks the QueryKey halves of the partitionable
// specs: keyed reads name their key, whole-state reads do not.
func TestQueryKeyRouting(t *testing.T) {
	if k, ok := (MemorySpec{}).QueryKey(ReadKey{K: "x"}); !ok || k != "x" {
		t.Fatalf("memory R(x) must route to key x, got (%q,%v)", k, ok)
	}
	if k, ok := (CounterMapSpec{}).QueryKey(ReadCtr{K: "y"}); !ok || k != "y" {
		t.Fatalf("countermap R(y) must route to key y, got (%q,%v)", k, ok)
	}
	if _, ok := (CounterMapSpec{}).QueryKey(ReadAllCtrs{}); ok {
		t.Fatal("countermap R* observes the whole state")
	}
	if _, ok := (SetSpec{}).QueryKey(Read{}); ok {
		t.Fatal("set R observes the whole state")
	}
}
