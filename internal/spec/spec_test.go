package spec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetSemantics(t *testing.T) {
	sp := Set()
	s := sp.Initial()
	s = sp.Apply(s, Ins{"1"})
	s = sp.Apply(s, Ins{"2"})
	if got := sp.Query(s, Read{}).(Elems); got.String() != "{1, 2}" {
		t.Fatalf("after I(1) I(2): got %v", got)
	}
	s = sp.Apply(s, Del{"1"})
	if got := sp.Query(s, Read{}).(Elems); got.String() != "{2}" {
		t.Fatalf("after D(1): got %v", got)
	}
	s = sp.Apply(s, Del{"3"}) // deleting an absent element is a no-op
	if got := sp.Query(s, Read{}).(Elems); got.String() != "{2}" {
		t.Fatalf("after D(3): got %v", got)
	}
	s = sp.Apply(s, Ins{"2"}) // inserting a present element is a no-op
	if got := sp.Query(s, Read{}).(Elems); got.String() != "{2}" {
		t.Fatalf("after duplicate I(2): got %v", got)
	}
}

func TestSetCloneIsDeep(t *testing.T) {
	sp := Set()
	s := sp.Apply(sp.Initial(), Ins{"a"})
	c := sp.Clone(s)
	sp.Apply(c, Ins{"b"})
	if sp.KeyState(s) != "{a}" {
		t.Fatalf("clone aliased original: %s", sp.KeyState(s))
	}
}

func TestSetReinsertAfterDelete(t *testing.T) {
	// Unlike a 2P-Set, the sequential set allows re-insertion after
	// deletion; the UQ-ADT must reflect the sequential specification.
	sp := Set()
	s := Replay(sp, []Update{Ins{"x"}, Del{"x"}, Ins{"x"}})
	if got := sp.Query(s, Read{}).(Elems); got.String() != "{x}" {
		t.Fatalf("re-insert after delete: got %v", got)
	}
}

func TestElemsString(t *testing.T) {
	if (Elems{}).String() != "∅" {
		t.Fatalf("empty set should render as ∅")
	}
	if (Elems{"1"}).String() != "{1}" {
		t.Fatalf("singleton rendering wrong")
	}
}

func TestValidSequentialSetPaperWords(t *testing.T) {
	sp := Set()
	// w from the proof sketch of Fig. 1(b): I(1)·I(2)·D(1)·D(2) ends in ∅.
	word := []Op{
		UpdateOp(Ins{"1"}), UpdateOp(Ins{"2"}),
		UpdateOp(Del{"1"}), UpdateOp(Del{"2"}),
		QueryOp(Read{}, Elems{}),
	}
	if !ValidSequential(sp, word) {
		t.Fatalf("paper linearization rejected: %s", FormatWord(word))
	}
	// I(2)·D(1)·I(1)·D(2) ends in {1}.
	word = []Op{
		UpdateOp(Ins{"2"}), UpdateOp(Del{"1"}),
		UpdateOp(Ins{"1"}), UpdateOp(Del{"2"}),
		QueryOp(Read{}, Elems{"1"}),
	}
	if !ValidSequential(sp, word) {
		t.Fatalf("paper linearization rejected: %s", FormatWord(word))
	}
	// A wrong query output must be rejected.
	word = []Op{UpdateOp(Ins{"1"}), QueryOp(Read{}, Elems{})}
	if ValidSequential(sp, word) {
		t.Fatalf("invalid word accepted: %s", FormatWord(word))
	}
}

func TestValidSequentialFig2Words(t *testing.T) {
	sp := Set()
	// w1 = I(1)·I(3)·R/{1,3}·I(2)·R/{1,2,3}·D(3)·R/{1,2} (Fig. 2).
	w1 := []Op{
		UpdateOp(Ins{"1"}), UpdateOp(Ins{"3"}),
		QueryOp(Read{}, Elems{"1", "3"}),
		UpdateOp(Ins{"2"}),
		QueryOp(Read{}, Elems{"1", "2", "3"}),
		UpdateOp(Del{"3"}),
		QueryOp(Read{}, Elems{"1", "2"}),
	}
	if !ValidSequential(sp, w1) {
		t.Fatalf("w1 rejected: %s", FormatWord(w1))
	}
	// w2 = I(2)·D(3)·R/{2}·I(1)·R/{1,2}·I(3)·R/{1,2,3}.
	w2 := []Op{
		UpdateOp(Ins{"2"}), UpdateOp(Del{"3"}),
		QueryOp(Read{}, Elems{"2"}),
		UpdateOp(Ins{"1"}),
		QueryOp(Read{}, Elems{"1", "2"}),
		UpdateOp(Ins{"3"}),
		QueryOp(Read{}, Elems{"1", "2", "3"}),
	}
	if !ValidSequential(sp, w2) {
		t.Fatalf("w2 rejected: %s", FormatWord(w2))
	}
}

func TestRegisterSemantics(t *testing.T) {
	sp := Register("v0")
	s := sp.Initial()
	if got := sp.Query(s, Read{}); got != RegVal("v0") {
		t.Fatalf("initial read: got %v", got)
	}
	s = sp.Apply(s, Write{"a"})
	s = sp.Apply(s, Write{"b"})
	if got := sp.Query(s, Read{}); got != RegVal("b") {
		t.Fatalf("read after two writes: got %v", got)
	}
}

func TestCounterSemantics(t *testing.T) {
	sp := Counter()
	s := Replay(sp, []Update{Add{3}, Add{-1}, Add{5}})
	if got := sp.Query(s, Read{}); got != CtrVal(7) {
		t.Fatalf("counter value: got %v", got)
	}
}

func TestMemorySemantics(t *testing.T) {
	sp := Memory("0")
	s := sp.Initial()
	if got := sp.Query(s, ReadKey{"x"}); got != RegVal("0") {
		t.Fatalf("unwritten register: got %v", got)
	}
	s = sp.Apply(s, WriteKey{"x", "1"})
	s = sp.Apply(s, WriteKey{"y", "2"})
	s = sp.Apply(s, WriteKey{"x", "3"})
	if got := sp.Query(s, ReadKey{"x"}); got != RegVal("3") {
		t.Fatalf("read x: got %v", got)
	}
	if got := sp.Query(s, ReadKey{"y"}); got != RegVal("2") {
		t.Fatalf("read y: got %v", got)
	}
}

func TestQueueSemantics(t *testing.T) {
	sp := Queue()
	s := sp.Initial()
	if got := sp.Query(s, Front{}); got != Bottom {
		t.Fatalf("empty front: got %v", got)
	}
	s = sp.Apply(s, Enq{"a"})
	s = sp.Apply(s, Enq{"b"})
	if got := sp.Query(s, Front{}); got != RegVal("a") {
		t.Fatalf("front: got %v", got)
	}
	s = sp.Apply(s, DeqFront{})
	if got := sp.Query(s, Front{}); got != RegVal("b") {
		t.Fatalf("front after deq: got %v", got)
	}
	s = sp.Apply(s, DeqFront{})
	s = sp.Apply(s, DeqFront{}) // deq on empty queue is a no-op
	if got := sp.Query(s, Front{}); got != Bottom {
		t.Fatalf("front after drain: got %v", got)
	}
}

func TestStackSemantics(t *testing.T) {
	sp := Stack()
	s := sp.Initial()
	s = sp.Apply(s, Push{"a"})
	s = sp.Apply(s, Push{"b"})
	if got := sp.Query(s, Top{}); got != RegVal("b") {
		t.Fatalf("top: got %v", got)
	}
	s = sp.Apply(s, PopTop{})
	if got := sp.Query(s, Top{}); got != RegVal("a") {
		t.Fatalf("top after pop: got %v", got)
	}
}

func TestLogSemantics(t *testing.T) {
	sp := Log()
	s := Replay(sp, []Update{Append{"a"}, Append{"b"}})
	got := sp.Query(s, ReadLog{}).(Lines)
	if got.String() != "[a;b]" {
		t.Fatalf("log contents: got %v", got)
	}
	// Appends must not commute: the whole point of the log example.
	s2 := Replay(sp, []Update{Append{"b"}, Append{"a"}})
	if sp.KeyState(s) == sp.KeyState(s2) {
		t.Fatalf("appends unexpectedly commute")
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		adt, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if adt.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, adt.Name())
		}
		// Initial state must be usable immediately.
		_ = adt.KeyState(adt.Initial())
	}
	if _, err := ByName("no-such-type"); err == nil {
		t.Fatalf("expected error for unknown type")
	}
}

func TestIsCommutative(t *testing.T) {
	if !IsCommutative(Counter()) {
		t.Fatalf("counter should be commutative")
	}
	if !IsCommutative(GSet()) {
		t.Fatalf("gset should be commutative")
	}
	if IsCommutative(Set()) {
		t.Fatalf("set must not be commutative (I and D conflict)")
	}
	if IsCommutative(Log()) {
		t.Fatalf("log must not be commutative")
	}
}

// randomSetUpdates builds a pseudo-random update word over a small
// support so that collisions (insert/delete of the same element) are
// frequent.
func randomSetUpdates(r *rand.Rand, n int) []Update {
	support := []string{"1", "2", "3"}
	ops := make([]Update, n)
	for i := range ops {
		v := support[r.Intn(len(support))]
		if r.Intn(2) == 0 {
			ops[i] = Ins{v}
		} else {
			ops[i] = Del{v}
		}
	}
	return ops
}

// TestQuickSetUndoRoundTrip: applying any update and then its undo is
// the identity on states — the invariant the undo-redo engine relies
// on.
func TestQuickSetUndoRoundTrip(t *testing.T) {
	sp := Set()
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		ops := randomSetUpdates(r, int(n%20))
		s := sp.Initial()
		for _, u := range ops {
			s = sp.Apply(s, u)
		}
		before := sp.KeyState(s)
		extra := randomSetUpdates(r, 1)[0]
		next, undo := sp.ApplyUndo(s, extra)
		restored := undo(next)
		return sp.KeyState(restored) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCounterCommutes: any permutation of counter updates reaches
// the same state (pure CRDT property claimed in §VII-C).
func TestQuickCounterCommutes(t *testing.T) {
	sp := Counter()
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		k := int(n%8) + 2
		ops := make([]Update, k)
		for i := range ops {
			ops[i] = Add{int64(r.Intn(11) - 5)}
		}
		ref := sp.KeyState(Replay(sp, ops))
		perm := r.Perm(k)
		shuffled := make([]Update, k)
		for i, j := range perm {
			shuffled[i] = ops[j]
		}
		return sp.KeyState(Replay(sp, shuffled)) == ref
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSetNotCommutativeWitness: the set has at least one
// non-commuting pair (I(v) and D(v)), so shuffles CAN change the state.
func TestQuickSetNotCommutativeWitness(t *testing.T) {
	sp := Set()
	a := sp.KeyState(Replay(sp, []Update{Ins{"1"}, Del{"1"}}))
	b := sp.KeyState(Replay(sp, []Update{Del{"1"}, Ins{"1"}}))
	if a == b {
		t.Fatalf("I(1)·D(1) and D(1)·I(1) should differ, both gave %s", a)
	}
}

// TestQuickMemoryUndoRoundTrip mirrors the set undo invariant for the
// register map.
func TestQuickMemoryUndoRoundTrip(t *testing.T) {
	sp := Memory("0")
	keys := []string{"x", "y"}
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		s := sp.Initial()
		for i := 0; i < int(n%10); i++ {
			s = sp.Apply(s, WriteKey{keys[r.Intn(2)], string(rune('a' + r.Intn(4)))})
		}
		before := sp.KeyState(s)
		next, undo := sp.ApplyUndo(s, WriteKey{keys[r.Intn(2)], "zz"})
		return sp.KeyState(undo(next)) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRoundTrips(t *testing.T) {
	cases := []struct {
		adt UQADT
		ops []Update
	}{
		{Set(), []Update{Ins{"hello"}, Del{""}, Ins{"日本"}}},
		{Register(""), []Update{Write{"v"}, Write{""}}},
		{Counter(), []Update{Add{0}, Add{-127}, Add{1 << 40}}},
		{Memory(""), []Update{WriteKey{"k", "v"}, WriteKey{"", ""}, WriteKey{"a=b", "c;d"}}},
		{Log(), []Update{Append{"line"}}},
	}
	for _, c := range cases {
		codec, ok := c.adt.(Codec)
		if !ok {
			t.Fatalf("%s: no codec", c.adt.Name())
		}
		for _, u := range c.ops {
			b, err := codec.EncodeUpdate(u)
			if err != nil {
				t.Fatalf("%s: encode %v: %v", c.adt.Name(), u, err)
			}
			got, err := codec.DecodeUpdate(b)
			if err != nil {
				t.Fatalf("%s: decode %v: %v", c.adt.Name(), u, err)
			}
			if got != u {
				t.Fatalf("%s: round trip %v -> %v", c.adt.Name(), u, got)
			}
		}
	}
}

func TestExplainState(t *testing.T) {
	// Set: consistent observations explain; inconsistent do not.
	var ex StateExplainer = Set()
	if _, ok := ex.ExplainState([]Observation{
		{Read{}, Elems{"1"}}, {Read{}, Elems{"1"}},
	}); !ok {
		t.Fatalf("consistent set observations should explain")
	}
	if _, ok := ex.ExplainState([]Observation{
		{Read{}, Elems{"1"}}, {Read{}, Elems{"2"}},
	}); ok {
		t.Fatalf("inconsistent set observations should not explain")
	}
	// Memory: per-register constraints.
	ex = Memory("0")
	s, ok := ex.ExplainState([]Observation{
		{ReadKey{"x"}, RegVal("1")}, {ReadKey{"y"}, RegVal("2")},
	})
	if !ok {
		t.Fatalf("memory observations should explain")
	}
	sp := Memory("0")
	if got := sp.Query(s, ReadKey{"x"}); got != RegVal("1") {
		t.Fatalf("explained state wrong: %v", got)
	}
	if _, ok := ex.ExplainState([]Observation{
		{ReadKey{"x"}, RegVal("1")}, {ReadKey{"x"}, RegVal("2")},
	}); ok {
		t.Fatalf("conflicting register observations should not explain")
	}
}

func TestExplainedStateSatisfiesObservations(t *testing.T) {
	// Cross-check the StateExplainer contract G(s, in) = out on all
	// exported explainers.
	checks := []struct {
		adt UQADT
		obs []Observation
	}{
		{Set(), []Observation{{Read{}, Elems{"1", "2"}}}},
		{Register("init"), []Observation{{Read{}, RegVal("w")}}},
		{Counter(), []Observation{{Read{}, CtrVal(41)}}},
		{Log(), []Observation{{ReadLog{}, Lines{"a", "b"}}}},
	}
	for _, c := range checks {
		ex := c.adt.(StateExplainer)
		s, ok := ex.ExplainState(c.obs)
		if !ok {
			t.Fatalf("%s: explain failed", c.adt.Name())
		}
		for _, o := range c.obs {
			got := c.adt.Query(s, o.In)
			if !c.adt.EqualOutput(got, o.Out) {
				t.Fatalf("%s: G(s,%v)=%v, want %v", c.adt.Name(), o.In, got, o.Out)
			}
		}
	}
}

func TestGSetRejectsDelete(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("gset must panic on delete")
		}
	}()
	g := GSet()
	g.Apply(g.Initial(), Del{"x"})
}

func TestFormatWord(t *testing.T) {
	w := []Op{UpdateOp(Ins{"1"}), QueryOp(Read{}, Elems{"1"})}
	if got := FormatWord(w); got != "I(1)·R/{1}" {
		t.Fatalf("FormatWord = %q", got)
	}
}
