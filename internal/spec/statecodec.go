package spec

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// StateCodec is implemented by specifications whose states can be
// serialized. It is required only for transferring a *compacted*
// replica snapshot (internal/core's state transfer): a replica whose
// log still contains every update can always be bootstrapped from the
// update log alone.
type StateCodec interface {
	EncodeState(s State) ([]byte, error)
	DecodeState(b []byte) (State, error)
}

// encodeStrings writes a length-prefixed string list.
func encodeStrings(ss []string) []byte {
	var buf bytes.Buffer
	var lenb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenb[:], uint64(len(ss)))
	buf.Write(lenb[:n])
	for _, s := range ss {
		n = binary.PutUvarint(lenb[:], uint64(len(s)))
		buf.Write(lenb[:n])
		buf.WriteString(s)
	}
	return buf.Bytes()
}

// decodeStrings reads a list written by encodeStrings and returns the
// number of bytes consumed.
func decodeStrings(b []byte) ([]string, int, error) {
	count, off := binary.Uvarint(b)
	if off <= 0 {
		return nil, 0, fmt.Errorf("spec: malformed string list")
	}
	out := make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		l, n := binary.Uvarint(b[off:])
		if n <= 0 || uint64(len(b)-off-n) < l {
			return nil, 0, fmt.Errorf("spec: truncated string list")
		}
		off += n
		out = append(out, string(b[off:off+int(l)]))
		off += int(l)
	}
	return out, off, nil
}

// EncodeState implements StateCodec for the set.
func (SetSpec) EncodeState(s State) ([]byte, error) {
	return encodeStrings(setElems(s.(map[string]bool))), nil
}

// DecodeState implements StateCodec for the set.
func (SetSpec) DecodeState(b []byte) (State, error) {
	elems, _, err := decodeStrings(b)
	if err != nil {
		return nil, err
	}
	m := make(map[string]bool, len(elems))
	for _, v := range elems {
		m[v] = true
	}
	return m, nil
}

// EncodeState implements StateCodec for the register.
func (RegisterSpec) EncodeState(s State) ([]byte, error) {
	return []byte(s.(string)), nil
}

// DecodeState implements StateCodec for the register.
func (RegisterSpec) DecodeState(b []byte) (State, error) {
	return string(b), nil
}

// EncodeState implements StateCodec for the counter.
func (CounterSpec) EncodeState(s State) ([]byte, error) {
	return []byte(strconv.FormatInt(s.(int64), 10)), nil
}

// DecodeState implements StateCodec for the counter.
func (CounterSpec) DecodeState(b []byte) (State, error) {
	n, err := strconv.ParseInt(string(b), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("spec: bad counter state: %w", err)
	}
	return n, nil
}

// EncodeState implements StateCodec for the counter map: sorted
// key/value pairs, values rendered in decimal.
func (CounterMapSpec) EncodeState(s State) ([]byte, error) {
	m := s.(map[string]int64)
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	flat := make([]string, 0, 2*len(keys))
	for _, k := range keys {
		flat = append(flat, k, strconv.FormatInt(m[k], 10))
	}
	return encodeStrings(flat), nil
}

// DecodeState implements StateCodec for the counter map.
func (CounterMapSpec) DecodeState(b []byte) (State, error) {
	flat, _, err := decodeStrings(b)
	if err != nil {
		return nil, err
	}
	if len(flat)%2 != 0 {
		return nil, fmt.Errorf("spec: odd countermap state list")
	}
	m := make(map[string]int64, len(flat)/2)
	for i := 0; i < len(flat); i += 2 {
		n, err := strconv.ParseInt(flat[i+1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("spec: bad countermap value: %w", err)
		}
		m[flat[i]] = n
	}
	return m, nil
}

// EncodeState implements StateCodec for the memory: sorted key/value
// pairs.
func (MemorySpec) EncodeState(s State) ([]byte, error) {
	m := s.(map[string]string)
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	flat := make([]string, 0, 2*len(keys))
	for _, k := range keys {
		flat = append(flat, k, m[k])
	}
	return encodeStrings(flat), nil
}

// DecodeState implements StateCodec for the memory.
func (MemorySpec) DecodeState(b []byte) (State, error) {
	flat, _, err := decodeStrings(b)
	if err != nil {
		return nil, err
	}
	if len(flat)%2 != 0 {
		return nil, fmt.Errorf("spec: odd memory state list")
	}
	m := make(map[string]string, len(flat)/2)
	for i := 0; i < len(flat); i += 2 {
		m[flat[i]] = flat[i+1]
	}
	return m, nil
}

// EncodeState implements StateCodec for the log.
func (LogSpec) EncodeState(s State) ([]byte, error) {
	return encodeStrings(s.([]string)), nil
}

// DecodeState implements StateCodec for the log.
func (LogSpec) DecodeState(b []byte) (State, error) {
	lines, _, err := decodeStrings(b)
	if err != nil {
		return nil, err
	}
	return lines, nil
}

// EncodeState implements StateCodec for the sequence.
func (SequenceSpec) EncodeState(s State) ([]byte, error) {
	return encodeStrings(s.([]string)), nil
}

// DecodeState implements StateCodec for the sequence.
func (SequenceSpec) DecodeState(b []byte) (State, error) {
	items, _, err := decodeStrings(b)
	if err != nil {
		return nil, err
	}
	return items, nil
}

// EncodeState implements StateCodec for the graph: vertex list then
// flattened edge list.
func (GraphSpec) EncodeState(s State) ([]byte, error) {
	val := s.(*graphState).value()
	flatEdges := make([]string, 0, 2*len(val.Edges))
	for _, e := range val.Edges {
		flatEdges = append(flatEdges, e[0], e[1])
	}
	var buf bytes.Buffer
	buf.Write(encodeStrings(val.Vertices))
	buf.Write(encodeStrings(flatEdges))
	return buf.Bytes(), nil
}

// DecodeState implements StateCodec for the graph.
func (sp GraphSpec) DecodeState(b []byte) (State, error) {
	verts, off, err := decodeStrings(b)
	if err != nil {
		return nil, err
	}
	flatEdges, _, err := decodeStrings(b[off:])
	if err != nil {
		return nil, err
	}
	if len(flatEdges)%2 != 0 {
		return nil, fmt.Errorf("spec: odd graph edge list")
	}
	g := sp.Initial().(*graphState)
	for _, v := range verts {
		g.vertices[v] = true
	}
	for i := 0; i < len(flatEdges); i += 2 {
		if !g.vertices[flatEdges[i]] || !g.vertices[flatEdges[i+1]] {
			return nil, fmt.Errorf("spec: dangling edge in graph state")
		}
		g.edges[[2]string{flatEdges[i], flatEdges[i+1]}] = true
	}
	return g, nil
}
