package spec

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// AddKey is the counter-map update: add N (possibly negative) to the
// counter named K.
type AddKey struct {
	K string
	N int64
}

// String renders the update, e.g. "Inc(views,3)" or "Dec(stock,1)".
func (a AddKey) String() string {
	if a.N < 0 {
		return fmt.Sprintf("Dec(%s,%d)", a.K, -a.N)
	}
	return fmt.Sprintf("Inc(%s,%d)", a.K, a.N)
}

// ReadCtr is the counter-map query read(k): the value of counter k
// (zero if never touched), returned as a CtrVal.
type ReadCtr struct{ K string }

// String renders the query input, e.g. "R(views)".
func (r ReadCtr) String() string { return fmt.Sprintf("R(%s)", r.K) }

// ReadAllCtrs is the counter-map query that observes every counter; it
// returns an Elems of sorted "k=v" strings (zero-valued counters that
// were touched are included).
type ReadAllCtrs struct{}

// String renders the query input "R*".
func (ReadAllCtrs) String() string { return "R*" }

// CounterMapSpec is a map of named integer counters: updates add to one
// counter, queries read one counter or all of them. States are
// map[string]int64 holding only counters that were touched.
//
// All updates commute (additions to the same counter commute, and
// additions to different counters are independent), so the type is a
// pure CRDT; it is also Partitionable — each update and each keyed read
// addresses exactly one counter — which makes it the canonical workload
// for the key-sharded construction (core.ShardedReplica) and the E14
// shard-scaling experiment.
type CounterMapSpec struct{}

// CounterMap returns the counter-map UQ-ADT.
func CounterMap() CounterMapSpec { return CounterMapSpec{} }

// Name implements UQADT.
func (CounterMapSpec) Name() string { return "countermap" }

// Initial implements UQADT: no counter touched.
func (CounterMapSpec) Initial() State { return map[string]int64{} }

// Apply implements UQADT: T(s, Inc(k,n)) adds n to counter k.
func (CounterMapSpec) Apply(s State, u Update) State {
	a, ok := u.(AddKey)
	if !ok {
		panic(fmt.Sprintf("spec: countermap does not recognize update %T", u))
	}
	m := s.(map[string]int64)
	m[a.K] += a.N
	return m
}

// Clone implements UQADT.
func (CounterMapSpec) Clone(s State) State {
	m := s.(map[string]int64)
	c := make(map[string]int64, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// Query implements UQADT.
func (CounterMapSpec) Query(s State, in QueryInput) QueryOutput {
	m := s.(map[string]int64)
	switch q := in.(type) {
	case ReadCtr:
		return CtrVal(m[q.K])
	case ReadAllCtrs:
		return ctrElems(m)
	default:
		panic(fmt.Sprintf("spec: countermap does not recognize query %T", in))
	}
}

// EqualOutput implements UQADT.
func (CounterMapSpec) EqualOutput(a, b QueryOutput) bool {
	switch va := a.(type) {
	case CtrVal:
		vb, ok := b.(CtrVal)
		return ok && va == vb
	case Elems:
		vb, ok := b.(Elems)
		return ok && equalElems(va, vb)
	default:
		return false
	}
}

// KeyState implements UQADT.
func (CounterMapSpec) KeyState(s State) string {
	return ctrElems(s.(map[string]int64)).String()
}

// ApplyUndo implements Undoable: the inverse of adding n is adding -n,
// removing the counter again when it had never been touched.
func (CounterMapSpec) ApplyUndo(s State, u Update) (State, Undo) {
	a, ok := u.(AddKey)
	if !ok {
		panic(fmt.Sprintf("spec: countermap does not recognize update %T", u))
	}
	m := s.(map[string]int64)
	_, had := m[a.K]
	m[a.K] += a.N
	return m, func(t State) State {
		tm := t.(map[string]int64)
		if !had {
			delete(tm, a.K)
			return t
		}
		tm[a.K] -= a.N
		return t
	}
}

// CommutativeUpdates implements Commutative.
func (CounterMapSpec) CommutativeUpdates() bool { return true }

// UpdateKey implements Partitionable: an addition addresses its
// counter.
func (CounterMapSpec) UpdateKey(u Update) string {
	a, ok := u.(AddKey)
	if !ok {
		panic(fmt.Sprintf("spec: countermap does not recognize update %T", u))
	}
	return a.K
}

// QueryKey implements Partitionable: a keyed read addresses its
// counter; ReadAllCtrs observes the whole state.
func (CounterMapSpec) QueryKey(in QueryInput) (string, bool) {
	r, ok := in.(ReadCtr)
	if !ok {
		return "", false
	}
	return r.K, true
}

// MergeInto implements Partitionable: union of disjoint counter maps.
func (CounterMapSpec) MergeInto(dst, src State) State {
	d := dst.(map[string]int64)
	for k, v := range src.(map[string]int64) {
		d[k] = v
	}
	return d
}

// UnmergeFrom implements Partitionable: remove src's counters.
func (CounterMapSpec) UnmergeFrom(dst, src State) State {
	d := dst.(map[string]int64)
	for k := range src.(map[string]int64) {
		delete(d, k)
	}
	return d
}

// ExtractRange implements Partitionable: move the selected counters
// into a fresh counter map.
func (CounterMapSpec) ExtractRange(s State, keep func(key string) bool) (State, int) {
	out, n := extractMap(s.(map[string]int64), keep)
	if n == 0 {
		return nil, 0
	}
	return out, n
}

// EncodeUpdate implements Codec. Wire format: uvarint key length, key
// bytes, zig-zag varint delta.
func (sp CounterMapSpec) EncodeUpdate(u Update) ([]byte, error) {
	return sp.AppendUpdate(nil, u)
}

// AppendUpdate implements AppendCodec.
func (CounterMapSpec) AppendUpdate(dst []byte, u Update) ([]byte, error) {
	a, ok := u.(AddKey)
	if !ok {
		return nil, fmt.Errorf("spec: countermap does not recognize update %T", u)
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(a.K)))
	dst = append(dst, buf[:n]...)
	dst = append(dst, a.K...)
	n = binary.PutVarint(buf[:], a.N)
	return append(dst, buf[:n]...), nil
}

// DecodeUpdate implements Codec.
func (CounterMapSpec) DecodeUpdate(b []byte) (Update, error) {
	klen, read := binary.Uvarint(b)
	if read <= 0 || uint64(len(b)-read) < klen {
		return nil, fmt.Errorf("spec: malformed countermap update")
	}
	rest := b[read:]
	n, read := binary.Varint(rest[klen:])
	if read <= 0 {
		return nil, fmt.Errorf("spec: malformed countermap delta")
	}
	return AddKey{K: string(rest[:klen]), N: n}, nil
}

// ctrElems renders a counter-map state canonically as sorted "k=v"
// entries.
func ctrElems(m map[string]int64) Elems {
	out := make([]string, 0, len(m))
	for k, v := range m {
		out = append(out, k+"="+strconv.FormatInt(v, 10))
	}
	sort.Strings(out)
	return out
}
