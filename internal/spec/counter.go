package spec

import (
	"encoding/binary"
	"fmt"
	"strconv"
)

// Add is the counter update: add N (possibly negative) to the counter.
type Add struct{ N int64 }

// String renders the update, e.g. "Inc(3)" or "Dec(2)".
func (a Add) String() string {
	if a.N < 0 {
		return fmt.Sprintf("Dec(%d)", -a.N)
	}
	return fmt.Sprintf("Inc(%d)", a.N)
}

// CtrVal is the counter query output.
type CtrVal int64

// String renders the output.
func (v CtrVal) String() string { return strconv.FormatInt(int64(v), 10) }

// CounterSpec is an integer counter with commutative increment and
// decrement updates and a read query. Because all updates commute it is
// a pure CRDT: every linearization of a fixed update set yields the
// same state, which is why (§VII-C) the naive eager-apply
// implementation is already update consistent for it.
type CounterSpec struct{}

// Counter returns the counter UQ-ADT.
func Counter() CounterSpec { return CounterSpec{} }

// Name implements UQADT.
func (CounterSpec) Name() string { return "counter" }

// Initial implements UQADT.
func (CounterSpec) Initial() State { return int64(0) }

// Apply implements UQADT.
func (CounterSpec) Apply(s State, u Update) State {
	a, ok := u.(Add)
	if !ok {
		panic(fmt.Sprintf("spec: counter does not recognize update %T", u))
	}
	return s.(int64) + a.N
}

// Clone implements UQADT; counter states are immutable ints.
func (CounterSpec) Clone(s State) State { return s }

// Query implements UQADT.
func (CounterSpec) Query(s State, in QueryInput) QueryOutput {
	if _, ok := in.(Read); !ok {
		panic(fmt.Sprintf("spec: counter does not recognize query %T", in))
	}
	return CtrVal(s.(int64))
}

// EqualOutput implements UQADT.
func (CounterSpec) EqualOutput(a, b QueryOutput) bool {
	va, ok := a.(CtrVal)
	if !ok {
		return false
	}
	vb, ok := b.(CtrVal)
	return ok && va == vb
}

// KeyState implements UQADT.
func (CounterSpec) KeyState(s State) string {
	return strconv.FormatInt(s.(int64), 10)
}

// ApplyUndo implements Undoable.
func (CounterSpec) ApplyUndo(s State, u Update) (State, Undo) {
	a, ok := u.(Add)
	if !ok {
		panic(fmt.Sprintf("spec: counter does not recognize update %T", u))
	}
	return s.(int64) + a.N, func(t State) State { return t.(int64) - a.N }
}

// ExplainState implements StateExplainer.
func (CounterSpec) ExplainState(obs []Observation) (State, bool) {
	if len(obs) == 0 {
		return int64(0), true
	}
	first, ok := obs[0].Out.(CtrVal)
	if !ok {
		return nil, false
	}
	for _, o := range obs[1:] {
		v, ok := o.Out.(CtrVal)
		if !ok || v != first {
			return nil, false
		}
	}
	return int64(first), true
}

// CommutativeUpdates implements Commutative.
func (CounterSpec) CommutativeUpdates() bool { return true }

// EncodeUpdate implements Codec: a zig-zag varint.
func (sp CounterSpec) EncodeUpdate(u Update) ([]byte, error) {
	return sp.AppendUpdate(nil, u)
}

// AppendUpdate implements AppendCodec.
func (CounterSpec) AppendUpdate(dst []byte, u Update) ([]byte, error) {
	a, ok := u.(Add)
	if !ok {
		return nil, fmt.Errorf("spec: counter does not recognize update %T", u)
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], a.N)
	return append(dst, buf[:n]...), nil
}

// DecodeUpdate implements Codec.
func (CounterSpec) DecodeUpdate(b []byte) (Update, error) {
	n, read := binary.Varint(b)
	if read <= 0 {
		return nil, fmt.Errorf("spec: malformed counter update")
	}
	return Add{N: n}, nil
}
