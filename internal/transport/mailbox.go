package transport

import "sync"

// mailbox is the batch-drain queue shared by both asynchronous
// transports: LiveNetwork's per-(process, shard) dispatcher and
// TCPNetwork's per-peer sender both drain it with one lock round-trip
// per backlog (swap the whole queue out, never pop one envelope per
// acquisition). A mailbox is unbounded when max is zero — the
// wait-freedom configuration LiveNetwork uses — or bounded, in which
// case push either blocks until the consumer frees space or rejects
// the envelope, which is the TCP path's backpressure.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	// queue and the consumer's batch buffer ping-pong via swapWait.
	queue []envelope
	bytes int // payload bytes queued (peer-stats observability)
	max   int // queue bound; 0 = unbounded
	// discard drops every push immediately (counted in droppedDown):
	// the TCP path sets it while a peer link is down, so broadcasts to
	// a dead peer never block or accumulate — the on-reconnect digest
	// exchange repairs the loss.
	discard bool
	// droppedFull counts pushes rejected by the bound (the drop
	// backpressure policy); droppedDown counts envelopes lost to a down
	// or closed consumer (discard mode, or push after close).
	droppedFull uint64
	droppedDown uint64
	closed      bool
	busy        bool // consumer is processing a swapped-out batch
	// kicked releases a consumer blocked on an empty queue with an
	// empty batch — the TCP sender's link-death wakeup.
	kicked bool
}

func newMailbox(max int) *mailbox {
	m := &mailbox{max: max}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Push outcomes.
const (
	pushQueued = iota
	// pushDroppedDown: the consumer is down or closed (discard mode);
	// the envelope is gone — the reconnect-time digest exchange is the
	// repair path.
	pushDroppedDown
	// pushDroppedFull: the bound rejected the envelope under the drop
	// backpressure policy.
	pushDroppedFull
)

// push enqueues e. On a bounded, full mailbox it blocks until space
// frees when block is true, or rejects the envelope otherwise.
func (m *mailbox) push(e envelope, block bool) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.discard {
		m.droppedDown++
		return pushDroppedDown
	}
	for m.max > 0 && len(m.queue) >= m.max {
		if !block {
			m.droppedFull++
			return pushDroppedFull
		}
		m.cond.Wait()
		if m.closed || m.discard {
			m.droppedDown++
			return pushDroppedDown
		}
	}
	m.queue = append(m.queue, e)
	m.bytes += len(e.payload)
	m.cond.Broadcast()
	return pushQueued
}

// swapWait blocks until the mailbox is non-empty (or closed), then
// swaps the whole queue for the caller's recycled buffer and marks the
// consumer busy. It returns ok=false when the mailbox is closed and
// drained — the consumer's exit signal.
func (m *mailbox) swapWait(buf []envelope) ([]envelope, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed && !m.kicked {
		m.cond.Wait()
	}
	m.kicked = false
	if m.closed && len(m.queue) == 0 {
		return buf, false
	}
	if len(m.queue) == 0 {
		// Kicked awake with nothing queued: hand back an empty batch so
		// the consumer can re-check its exit conditions.
		m.busy = true
		return buf[:0], true
	}
	batch := m.queue
	m.queue = buf[:0]
	m.bytes = 0
	m.busy = true
	// Wake blocked pushers (the bound just cleared) and Drain waiters.
	m.cond.Broadcast()
	return batch, true
}

// kick wakes a consumer blocked on an empty queue without enqueuing
// anything; swapWait then returns an empty batch once.
func (m *mailbox) kick() {
	m.mu.Lock()
	m.kicked = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// idle marks the consumer done with its swapped-out batch and wakes
// waitEmpty waiters.
func (m *mailbox) idle() {
	m.mu.Lock()
	m.busy = false
	m.cond.Broadcast()
	m.mu.Unlock()
}

// setDiscard flips discard mode; entering it clears the queue (the
// envelopes count as dropped) and releases blocked pushers.
func (m *mailbox) setDiscard(on bool) {
	m.mu.Lock()
	m.discard = on
	if on {
		m.droppedDown += uint64(len(m.queue))
		m.queue = m.queue[:0]
		m.bytes = 0
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}

// close shuts the mailbox: pushes are rejected, and the consumer exits
// once the remaining queue is drained.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// depth reports the queued envelope count, payload bytes, the
// cumulative drop counters, and whether the consumer is mid-batch.
func (m *mailbox) depth() (n, bytes int, droppedFull, droppedDown uint64, busy bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue), m.bytes, m.droppedFull, m.droppedDown, m.busy
}

// waitEmpty blocks until the mailbox is empty and its consumer idle
// (or the mailbox is closed), reporting whether it had to wait —
// LiveNetwork.Drain repeats its pass until nothing waited.
func (m *mailbox) waitEmpty() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	waited := false
	for (len(m.queue) > 0 || m.busy) && !m.closed {
		waited = true
		m.cond.Wait()
	}
	return waited
}
