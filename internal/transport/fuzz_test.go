package transport

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

// FuzzEnvelopeDecode drives the wire-frame decoder with arbitrary
// bytes: it must never panic, never allocate past the frame bound, and
// every successfully decoded frame must round-trip through AppendFrame
// bit-identically. The streaming reader (ReadFrame) must agree with
// the buffer decoder on every accepted frame.
func FuzzEnvelopeDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add(AppendFrame(nil, Frame{Kind: KindData, From: 2, Shard: 1, Epoch: 3, Payload: []byte("payload")}))
	f.Add(AppendFrame(nil, Frame{Kind: KindHello, From: -1, Payload: helloPayload(RoleClient, 0, "")}))
	f.Add(AppendFrame(nil, Frame{Kind: KindHello, From: 0, Payload: helloPayload(RolePeer, 3, "counter")}))
	f.Add(AppendFrame(nil, Frame{Kind: KindDigest, From: 0, Payload: bytes.Repeat([]byte{7}, 100)}))
	f.Add(append(AppendFrame(nil, Frame{Kind: KindData, From: 0, Payload: []byte("a")}),
		AppendFrame(nil, Frame{Kind: KindData, From: 1, Payload: []byte("b")})...))

	const max = 1 << 20
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data, max)
		if err != nil {
			if n != 0 {
				t.Fatalf("error with consumed bytes: n=%d err=%v", n, err)
			}
		} else {
			if n <= 0 || n > len(data) {
				t.Fatalf("consumed %d of %d", n, len(data))
			}
			enc := AppendFrame(nil, fr)
			fr2, n2, err2 := DecodeFrame(enc, max)
			if err2 != nil {
				t.Fatalf("re-decode of re-encoded frame: %v", err2)
			}
			if n2 != len(enc) || fr2.Kind != fr.Kind || fr2.From != fr.From ||
				fr2.Shard != fr.Shard || fr2.Epoch != fr.Epoch || !bytes.Equal(fr2.Payload, fr.Payload) {
				t.Fatalf("round trip mismatch: %+v vs %+v", fr, fr2)
			}
		}
		// The streaming reader must accept exactly the frames the buffer
		// decoder accepts (modulo truncation, which it reports as I/O).
		sr, serr := ReadFrame(bufio.NewReader(bytes.NewReader(data)), max)
		if err == nil {
			if serr != nil {
				t.Fatalf("DecodeFrame accepted, ReadFrame rejected: %v", serr)
			}
			if sr.Kind != fr.Kind || sr.From != fr.From || !bytes.Equal(sr.Payload, fr.Payload) {
				t.Fatalf("reader/decoder disagree: %+v vs %+v", sr, fr)
			}
		} else if err == io.ErrUnexpectedEOF {
			if serr == nil {
				t.Fatal("DecodeFrame wants more bytes, ReadFrame accepted")
			}
		}
		// Hello payloads of decoded frames must parse or fail cleanly.
		if err == nil && fr.Kind == KindHello {
			parseHello(fr.Payload)
		}
	})
}
