package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Wire framing. Every message on a TCP link is one length-prefixed
// frame:
//
//	uvarint bodyLen
//	body:
//	  byte    kind         (Kind*)
//	  uvarint from+1       (0 = anonymous client)
//	  uvarint shard
//	  uvarint epoch
//	  payload              (bodyLen - header bytes)
//
// The payload of a data frame is exactly the bytes a Broadcast carried
// — the zero-alloc AppendCodec update encoding, or a lock-free drain's
// self-delimiting batch frame — so the socket transport adds a handful
// of header bytes and reuses the in-process wire format unchanged. The
// same framing carries the connection hello, the sync-on-connect
// digest exchange, and the client protocol (updates, queries, stats).

// Frame kinds.
const (
	// KindData is a replicated broadcast payload (timestamped update or
	// batch frame), tagged with its shard and epoch like an in-process
	// envelope.
	KindData byte = 1
	// KindHello opens a connection: payload is the wire magic, a role
	// byte (RolePeer/RoleClient) and the sender's cluster size.
	KindHello byte = 2
	// KindDigest carries a replica's encoded anti-entropy digest; the
	// receiver answers with KindSyncReply on its own link.
	KindDigest byte = 3
	// KindSyncReply carries the encoded missing-suffix (or snapshot
	// fallback) reply to a digest.
	KindSyncReply byte = 4
	// KindUpdate is a client-issued update: payload is the spec codec
	// encoding (no timestamp — the serving replica stamps it).
	KindUpdate byte = 5
	// KindQuery is a client query; payload is a gob-encoded input. The
	// server answers with KindResult.
	KindQuery byte = 6
	// KindResult answers KindQuery/KindStateKey/KindStats.
	KindResult byte = 7
	// KindStateKey asks the serving replica for its canonical state key.
	KindStateKey byte = 8
	// KindStats asks the daemon for its text stats dump.
	KindStats byte = 9
	// KindPing is a client flush barrier; the server answers KindPong
	// after processing everything before it on the connection.
	KindPing byte = 10
	// KindPong answers KindPing.
	KindPong byte = 11
	// KindError carries a text error back to a client.
	KindError byte = 12
)

// Connection roles, carried in the hello frame.
const (
	RolePeer   byte = 0
	RoleClient byte = 1
)

// WireMagic opens every hello payload; a connection whose first frame
// lacks it is not speaking this protocol and is closed.
const WireMagic = "ucw1"

// MaxFrame is the default bound on a frame body. A length prefix above
// the bound is treated as a malformed stream (never allocated), so a
// garbage or hostile connection cannot make a daemon allocate
// arbitrary memory.
const MaxFrame = 64 << 20

// FrameError marks a protocol-level decode failure (malformed or
// oversized frame) as opposed to an I/O error: the stream position is
// untrustworthy and the connection must be dropped, and readers count
// it as a bad frame.
type FrameError struct{ msg string }

func (e *FrameError) Error() string { return e.msg }

func frameErrf(format string, args ...any) error {
	return &FrameError{msg: fmt.Sprintf(format, args...)}
}

// Frame is one decoded wire frame.
type Frame struct {
	Kind  byte
	From  int // sending process id; -1 for anonymous clients
	Shard int
	Epoch int
	// Payload aliases the decode buffer (DecodeFrame) or is freshly
	// allocated per frame (ReadFrame).
	Payload []byte
}

// AppendFrame appends the wire encoding of one frame to dst.
func AppendFrame(dst []byte, f Frame) []byte {
	var hdr [1 + 3*binary.MaxVarintLen64]byte
	hdr[0] = f.Kind
	n := 1
	n += binary.PutUvarint(hdr[n:], uint64(f.From+1))
	n += binary.PutUvarint(hdr[n:], uint64(f.Shard))
	n += binary.PutUvarint(hdr[n:], uint64(f.Epoch))
	dst = binary.AppendUvarint(dst, uint64(n+len(f.Payload)))
	dst = append(dst, hdr[:n]...)
	return append(dst, f.Payload...)
}

// DecodeFrame decodes one frame from the front of buf, returning the
// number of bytes consumed. The frame's payload aliases buf. It
// returns io.ErrUnexpectedEOF when buf holds only a prefix of a valid
// frame (read more and retry), and a permanent error for a malformed
// or oversized frame. It never panics on arbitrary input — the fuzz
// target's contract.
func DecodeFrame(buf []byte, max int) (Frame, int, error) {
	bodyLen, n := binary.Uvarint(buf)
	if n == 0 {
		return Frame{}, 0, io.ErrUnexpectedEOF
	}
	if n < 0 {
		return Frame{}, 0, frameErrf("transport: malformed frame length")
	}
	if max <= 0 {
		max = MaxFrame
	}
	if bodyLen > uint64(max) {
		return Frame{}, 0, frameErrf("transport: frame length %d exceeds limit %d", bodyLen, max)
	}
	if uint64(len(buf)-n) < bodyLen {
		return Frame{}, 0, io.ErrUnexpectedEOF
	}
	body := buf[n : n+int(bodyLen)]
	f, err := decodeBody(body)
	if err != nil {
		return Frame{}, 0, err
	}
	return f, n + int(bodyLen), nil
}

func decodeBody(body []byte) (Frame, error) {
	if len(body) == 0 {
		return Frame{}, frameErrf("transport: empty frame body")
	}
	f := Frame{Kind: body[0]}
	rest := body[1:]
	fields := [3]uint64{}
	for i := range fields {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return Frame{}, frameErrf("transport: malformed frame header")
		}
		fields[i] = v
		rest = rest[n:]
	}
	const maxTag = 1 << 30 // header fields are small ints, not 64-bit data
	if fields[0] > maxTag || fields[1] > maxTag || fields[2] > maxTag {
		return Frame{}, frameErrf("transport: frame header field out of range")
	}
	f.From = int(fields[0]) - 1
	f.Shard = int(fields[1])
	f.Epoch = int(fields[2])
	f.Payload = rest
	return f, nil
}

// ReadFrame reads one frame from a buffered stream. The returned
// frame's payload is freshly allocated (safe to retain — handlers and
// the sync provider keep frame bytes past the call). Oversized and
// malformed frames return a permanent error; the caller must drop the
// connection, since the stream position is no longer trustworthy.
func ReadFrame(br *bufio.Reader, max int) (Frame, error) {
	bodyLen, err := binary.ReadUvarint(br)
	if err != nil {
		return Frame{}, err
	}
	if max <= 0 {
		max = MaxFrame
	}
	if bodyLen == 0 {
		return Frame{}, frameErrf("transport: empty frame body")
	}
	if bodyLen > uint64(max) {
		return Frame{}, frameErrf("transport: frame length %d exceeds limit %d", bodyLen, max)
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(br, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	return decodeBody(body)
}

// helloPayload encodes the connection-opening hello: magic, role, the
// sender's cluster size (a cross-cluster dial is refused early), and
// the length-prefixed object name the sender speaks (empty = unstated;
// pre-registry senders simply omit the trailing bytes, which older
// receivers ignored, so the field is compatible in both directions).
func helloPayload(role byte, n int, name string) []byte {
	p := make([]byte, 0, len(WireMagic)+1+2*binary.MaxVarintLen64+len(name))
	p = append(p, WireMagic...)
	p = append(p, role)
	p = binary.AppendUvarint(p, uint64(n))
	p = binary.AppendUvarint(p, uint64(len(name)))
	return append(p, name...)
}

// ClientHello returns the encoded hello frame a client opens a daemon
// connection with (anonymous sender, no cluster size claim, no object
// name claim — the daemon then accepts it for whatever it serves).
func ClientHello() []byte { return ClientHelloFor("") }

// ClientHelloFor is ClientHello claiming an object name: the daemon
// refuses the connection with a KindError reply when it serves a
// different object.
func ClientHelloFor(name string) []byte {
	return AppendFrame(nil, Frame{Kind: KindHello, From: -1, Payload: helloPayload(RoleClient, 0, name)})
}

// parseHello validates a hello payload, returning the role, cluster
// size, and claimed object name ("" when the sender stated none).
func parseHello(p []byte) (role byte, n int, name string, err error) {
	if len(p) < len(WireMagic)+1 || string(p[:len(WireMagic)]) != WireMagic {
		return 0, 0, "", frameErrf("transport: bad hello magic")
	}
	role = p[len(WireMagic)]
	if role != RolePeer && role != RoleClient {
		return 0, 0, "", frameErrf("transport: unknown hello role %d", role)
	}
	rest := p[len(WireMagic)+1:]
	size, m := binary.Uvarint(rest)
	if m <= 0 || size > 1<<20 {
		return 0, 0, "", frameErrf("transport: malformed hello cluster size")
	}
	rest = rest[m:]
	if len(rest) == 0 {
		return role, int(size), "", nil // pre-name hello
	}
	nameLen, m := binary.Uvarint(rest)
	if m <= 0 || nameLen > 1<<10 || uint64(len(rest)-m) < nameLen {
		return 0, 0, "", frameErrf("transport: malformed hello object name")
	}
	return role, int(size), string(rest[m : m+int(nameLen)]), nil
}
