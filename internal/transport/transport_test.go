package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// collect attaches recording handlers to all processes of a network and
// returns the per-process delivery logs (as "from:payload" strings).
func collect(net Network, n int) []*[]string {
	logs := make([]*[]string, n)
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		log := &[]string{}
		logs[i] = log
		id := i
		_ = id
		net.Attach(i, func(from int, payload []byte) {
			mu.Lock()
			*log = append(*log, fmt.Sprintf("%d:%s", from, payload))
			mu.Unlock()
		})
	}
	return logs
}

func TestSimSelfDeliveryIsSynchronous(t *testing.T) {
	net := NewSim(SimOptions{N: 2, Seed: 1})
	logs := collect(net, 2)
	net.Broadcast(0, []byte("a"))
	if len(*logs[0]) != 1 {
		t.Fatalf("sender must deliver to itself inline, log=%v", *logs[0])
	}
	if len(*logs[1]) != 0 {
		t.Fatalf("remote delivery must be asynchronous")
	}
	net.Quiesce()
	if len(*logs[1]) != 1 {
		t.Fatalf("remote delivery missing after quiesce")
	}
}

func TestSimReliableDeliveryToCorrect(t *testing.T) {
	const n = 4
	net := NewSim(SimOptions{N: n, Seed: 42})
	logs := collect(net, n)
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			net.Broadcast(i, []byte(fmt.Sprintf("m%d-%d", i, k)))
		}
	}
	net.Quiesce()
	for i := 0; i < n; i++ {
		if len(*logs[i]) != n*3 {
			t.Fatalf("process %d delivered %d of %d", i, len(*logs[i]), n*3)
		}
	}
	if net.Pending() != 0 {
		t.Fatalf("pending after quiesce: %d", net.Pending())
	}
}

func TestSimFIFOOrder(t *testing.T) {
	net := NewSim(SimOptions{N: 2, Seed: 7, FIFO: true})
	logs := collect(net, 2)
	for k := 0; k < 10; k++ {
		net.Broadcast(0, []byte(fmt.Sprintf("%02d", k)))
	}
	net.Quiesce()
	got := *logs[1]
	for k := 0; k < 10; k++ {
		if got[k] != fmt.Sprintf("0:%02d", k) {
			t.Fatalf("FIFO violated at %d: %v", k, got)
		}
	}
}

func TestSimNonFIFOCanReorder(t *testing.T) {
	// Without FIFO, some seed must produce an out-of-order delivery.
	reordered := false
	for seed := int64(0); seed < 20 && !reordered; seed++ {
		net := NewSim(SimOptions{N: 2, Seed: seed})
		logs := collect(net, 2)
		for k := 0; k < 6; k++ {
			net.Broadcast(0, []byte(fmt.Sprintf("%d", k)))
		}
		net.Quiesce()
		got := *logs[1]
		for k := 1; k < len(got); k++ {
			if got[k] < got[k-1] {
				reordered = true
			}
		}
	}
	if !reordered {
		t.Fatalf("no seed reordered messages — adversary too weak")
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func() []string {
		net := NewSim(SimOptions{N: 3, Seed: 99})
		logs := collect(net, 3)
		for i := 0; i < 3; i++ {
			for k := 0; k < 5; k++ {
				net.Broadcast(i, []byte(fmt.Sprintf("%d.%d", i, k)))
			}
		}
		net.Quiesce()
		var all []string
		for _, l := range logs {
			all = append(all, *l...)
		}
		return all
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("determinism broken at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestSimCrashStopsDelivery(t *testing.T) {
	net := NewSim(SimOptions{N: 3, Seed: 5})
	logs := collect(net, 3)
	net.Broadcast(0, []byte("before"))
	net.Crash(2)
	net.Quiesce()
	net.Broadcast(0, []byte("after"))
	net.Broadcast(2, []byte("from-crashed"))
	net.Quiesce()
	if len(*logs[2]) != 0 {
		t.Fatalf("crashed process received messages: %v", *logs[2])
	}
	for _, m := range *logs[1] {
		if m == "2:from-crashed" {
			t.Fatalf("crashed process broadcast leaked")
		}
	}
	if len(*logs[1]) != 2 {
		t.Fatalf("correct process should get 2 messages, got %v", *logs[1])
	}
}

func TestSimPartitionAndHeal(t *testing.T) {
	net := NewSim(SimOptions{N: 4, Seed: 11})
	logs := collect(net, 4)
	net.Partition([]int{0, 1}, []int{2, 3})
	net.Broadcast(0, []byte("x"))
	net.Quiesce()
	if len(*logs[1]) != 1 || len(*logs[2]) != 0 || len(*logs[3]) != 0 {
		t.Fatalf("partition not respected: %v %v %v", *logs[1], *logs[2], *logs[3])
	}
	if net.Pending() == 0 {
		t.Fatalf("cross-partition messages should stay queued")
	}
	net.Heal()
	net.Quiesce()
	if len(*logs[2]) != 1 || len(*logs[3]) != 1 {
		t.Fatalf("healed messages not delivered")
	}
}

func TestSimStats(t *testing.T) {
	net := NewSim(SimOptions{N: 3, Seed: 0})
	collect(net, 3)
	net.Broadcast(0, []byte("abcd"))
	net.Quiesce()
	s := net.Stats()
	if s.Broadcasts != 1 || s.Sends != 3 || s.Delivered != 3 || s.Bytes != 12 {
		t.Fatalf("stats wrong: %v", s)
	}
}

func TestURBSurvivesPartialBroadcastCrash(t *testing.T) {
	// The crash-adversary drops a random subset of the crashed
	// process's in-flight frames. With URB, either nobody applies the
	// update or every correct process does.
	f := func(seed int64) bool {
		const n = 4
		base := NewSim(SimOptions{N: n, Seed: seed})
		urb := NewURB(base, n)
		logs := collect(urb, n)
		urb.Broadcast(0, []byte("u"))
		// Deliver a couple of frames, then crash 0 dropping half of the
		// rest.
		base.StepN(2)
		base.CrashPartialBroadcast(0, 0.5)
		base.Quiesce()
		// All correct processes must agree on whether "u" exists.
		count := 0
		for i := 1; i < n; i++ {
			if len(*logs[i]) > 0 {
				count++
			}
		}
		return count == 0 || count == n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestURBWithoutItFailsUnderPartialCrash(t *testing.T) {
	// Sanity check that the adversary actually bites: best-effort
	// broadcast must, for some seed, deliver to a strict non-empty
	// subset of correct processes.
	for seed := int64(0); seed < 100; seed++ {
		const n = 4
		base := NewSim(SimOptions{N: n, Seed: seed})
		logs := collect(base, n)
		base.Broadcast(0, []byte("u"))
		base.StepN(1)
		base.CrashPartialBroadcast(0, 0)
		base.Quiesce()
		count := 0
		for i := 1; i < n; i++ {
			if len(*logs[i]) > 0 {
				count++
			}
		}
		if count > 0 && count < n-1 {
			return // divergence demonstrated
		}
	}
	t.Fatalf("best-effort broadcast never diverged; adversary broken")
}

func TestURBDeduplicates(t *testing.T) {
	const n = 3
	base := NewSim(SimOptions{N: n, Seed: 3})
	urb := NewURB(base, n)
	logs := collect(urb, n)
	for k := 0; k < 5; k++ {
		urb.Broadcast(1, []byte(fmt.Sprintf("m%d", k)))
	}
	base.Quiesce()
	for i := 0; i < n; i++ {
		if len(*logs[i]) != 5 {
			t.Fatalf("process %d delivered %d (dedup broken?)", i, len(*logs[i]))
		}
	}
}

func TestDuplicatingNetworkDuplicates(t *testing.T) {
	found := false
	for seed := int64(0); seed < 30 && !found; seed++ {
		net := NewSim(SimOptions{N: 2, Seed: seed, DuplicateProb: 0.5})
		logs := collect(net, 2)
		for k := 0; k < 5; k++ {
			net.Broadcast(0, []byte{byte(k)})
		}
		net.Quiesce()
		if len(*logs[1]) > 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("duplicating adversary never duplicated")
	}
}

func TestURBDeduplicatesAtLeastOnceChannel(t *testing.T) {
	// URB over an at-least-once network restores exactly-once
	// application delivery (the assumption Algorithm 1 states).
	f := func(seed int64) bool {
		const n = 3
		base := NewSim(SimOptions{N: n, Seed: seed, DuplicateProb: 0.4})
		urb := NewURB(base, n)
		logs := collect(urb, n)
		for k := 0; k < 6; k++ {
			urb.Broadcast(k%n, []byte{byte(k)})
		}
		base.Quiesce()
		for i := 0; i < n; i++ {
			if len(*logs[i]) != 6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateProbValidation(t *testing.T) {
	for _, opts := range []SimOptions{
		{N: 2, FIFO: true, DuplicateProb: 0.5},
		{N: 2, DuplicateProb: 1.0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSim(%+v) should panic", opts)
				}
			}()
			NewSim(opts)
		}()
	}
}

func TestLiveNetworkDeliversAll(t *testing.T) {
	const n = 4
	net := NewLive(n)
	defer net.Close()
	var mu sync.Mutex
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		net.Attach(i, func(from int, payload []byte) {
			mu.Lock()
			counts[i]++
			mu.Unlock()
		})
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				net.Broadcast(id, []byte{byte(k)})
			}
		}(i)
	}
	wg.Wait()
	net.Drain()
	net.Close()
	mu.Lock()
	defer mu.Unlock()
	for i, c := range counts {
		if c != n*50 {
			t.Fatalf("process %d got %d of %d", i, c, n*50)
		}
	}
}

func TestLiveNetworkCrash(t *testing.T) {
	net := NewLive(2)
	defer net.Close()
	var mu sync.Mutex
	got := 0
	net.Attach(0, func(int, []byte) {})
	net.Attach(1, func(int, []byte) { mu.Lock(); got++; mu.Unlock() })
	net.Crash(1)
	net.Broadcast(0, []byte("x"))
	net.Drain()
	mu.Lock()
	defer mu.Unlock()
	if got != 0 {
		t.Fatalf("crashed process handled a message")
	}
}

func TestLiveURB(t *testing.T) {
	const n = 3
	base := NewLive(n)
	defer base.Close()
	urb := NewURB(base, n)
	var mu sync.Mutex
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		urb.Attach(i, func(from int, payload []byte) {
			mu.Lock()
			counts[i]++
			mu.Unlock()
		})
	}
	for k := 0; k < 20; k++ {
		urb.Broadcast(k%n, []byte("m"))
	}
	base.Drain()
	// Relays may still be in flight after the first drain; drain until
	// stable.
	for i := 0; i < 3; i++ {
		base.Drain()
	}
	mu.Lock()
	defer mu.Unlock()
	for i, c := range counts {
		if c != 20 {
			t.Fatalf("process %d delivered %d of 20", i, c)
		}
	}
}

// TestQuickSimAllSeedsConverge: for arbitrary seeds the simulator
// delivers every broadcast to every correct process exactly once —
// reliability of the substrate is what Proposition 4 builds on.
func TestQuickSimAllSeedsConverge(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn%4) + 2
		net := NewSim(SimOptions{N: n, Seed: seed})
		logs := collect(net, n)
		r := rand.New(rand.NewSource(seed))
		msgs := 5 + r.Intn(10)
		for k := 0; k < msgs; k++ {
			net.Broadcast(r.Intn(n), []byte{byte(k)})
		}
		net.Quiesce()
		for i := 0; i < n; i++ {
			if len(*logs[i]) != msgs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
