package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// collect attaches recording handlers to all processes of a network and
// returns the per-process delivery logs (as "from:payload" strings).
func collect(net Network, n int) []*[]string {
	logs := make([]*[]string, n)
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		log := &[]string{}
		logs[i] = log
		id := i
		_ = id
		net.Attach(i, func(from int, payload []byte) {
			mu.Lock()
			*log = append(*log, fmt.Sprintf("%d:%s", from, payload))
			mu.Unlock()
		})
	}
	return logs
}

func TestSimSelfDeliveryIsSynchronous(t *testing.T) {
	net := NewSim(SimOptions{N: 2, Seed: 1})
	logs := collect(net, 2)
	net.Broadcast(0, []byte("a"))
	if len(*logs[0]) != 1 {
		t.Fatalf("sender must deliver to itself inline, log=%v", *logs[0])
	}
	if len(*logs[1]) != 0 {
		t.Fatalf("remote delivery must be asynchronous")
	}
	net.Quiesce()
	if len(*logs[1]) != 1 {
		t.Fatalf("remote delivery missing after quiesce")
	}
}

func TestSimReliableDeliveryToCorrect(t *testing.T) {
	const n = 4
	net := NewSim(SimOptions{N: n, Seed: 42})
	logs := collect(net, n)
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			net.Broadcast(i, []byte(fmt.Sprintf("m%d-%d", i, k)))
		}
	}
	net.Quiesce()
	for i := 0; i < n; i++ {
		if len(*logs[i]) != n*3 {
			t.Fatalf("process %d delivered %d of %d", i, len(*logs[i]), n*3)
		}
	}
	if net.Pending() != 0 {
		t.Fatalf("pending after quiesce: %d", net.Pending())
	}
}

func TestSimFIFOOrder(t *testing.T) {
	net := NewSim(SimOptions{N: 2, Seed: 7, FIFO: true})
	logs := collect(net, 2)
	for k := 0; k < 10; k++ {
		net.Broadcast(0, []byte(fmt.Sprintf("%02d", k)))
	}
	net.Quiesce()
	got := *logs[1]
	for k := 0; k < 10; k++ {
		if got[k] != fmt.Sprintf("0:%02d", k) {
			t.Fatalf("FIFO violated at %d: %v", k, got)
		}
	}
}

func TestSimNonFIFOCanReorder(t *testing.T) {
	// Without FIFO, some seed must produce an out-of-order delivery.
	reordered := false
	for seed := int64(0); seed < 20 && !reordered; seed++ {
		net := NewSim(SimOptions{N: 2, Seed: seed})
		logs := collect(net, 2)
		for k := 0; k < 6; k++ {
			net.Broadcast(0, []byte(fmt.Sprintf("%d", k)))
		}
		net.Quiesce()
		got := *logs[1]
		for k := 1; k < len(got); k++ {
			if got[k] < got[k-1] {
				reordered = true
			}
		}
	}
	if !reordered {
		t.Fatalf("no seed reordered messages — adversary too weak")
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func() []string {
		net := NewSim(SimOptions{N: 3, Seed: 99})
		logs := collect(net, 3)
		for i := 0; i < 3; i++ {
			for k := 0; k < 5; k++ {
				net.Broadcast(i, []byte(fmt.Sprintf("%d.%d", i, k)))
			}
		}
		net.Quiesce()
		var all []string
		for _, l := range logs {
			all = append(all, *l...)
		}
		return all
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("determinism broken at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestSimCrashStopsDelivery(t *testing.T) {
	net := NewSim(SimOptions{N: 3, Seed: 5})
	logs := collect(net, 3)
	net.Broadcast(0, []byte("before"))
	net.Crash(2)
	net.Quiesce()
	net.Broadcast(0, []byte("after"))
	net.Broadcast(2, []byte("from-crashed"))
	net.Quiesce()
	if len(*logs[2]) != 0 {
		t.Fatalf("crashed process received messages: %v", *logs[2])
	}
	for _, m := range *logs[1] {
		if m == "2:from-crashed" {
			t.Fatalf("crashed process broadcast leaked")
		}
	}
	if len(*logs[1]) != 2 {
		t.Fatalf("correct process should get 2 messages, got %v", *logs[1])
	}
}

func TestSimPartitionAndHeal(t *testing.T) {
	net := NewSim(SimOptions{N: 4, Seed: 11})
	logs := collect(net, 4)
	net.Partition([]int{0, 1}, []int{2, 3})
	net.Broadcast(0, []byte("x"))
	net.Quiesce()
	if len(*logs[1]) != 1 || len(*logs[2]) != 0 || len(*logs[3]) != 0 {
		t.Fatalf("partition not respected: %v %v %v", *logs[1], *logs[2], *logs[3])
	}
	if net.Pending() == 0 {
		t.Fatalf("cross-partition messages should stay queued")
	}
	net.Heal()
	net.Quiesce()
	if len(*logs[2]) != 1 || len(*logs[3]) != 1 {
		t.Fatalf("healed messages not delivered")
	}
}

func TestSimStats(t *testing.T) {
	net := NewSim(SimOptions{N: 3, Seed: 0})
	collect(net, 3)
	net.Broadcast(0, []byte("abcd"))
	net.Quiesce()
	s := net.Stats()
	if s.Broadcasts != 1 || s.Sends != 3 || s.Delivered != 3 || s.Bytes != 12 {
		t.Fatalf("stats wrong: %v", s)
	}
}

func TestURBSurvivesPartialBroadcastCrash(t *testing.T) {
	// The crash-adversary drops a random subset of the crashed
	// process's in-flight frames. With URB, either nobody applies the
	// update or every correct process does.
	f := func(seed int64) bool {
		const n = 4
		base := NewSim(SimOptions{N: n, Seed: seed})
		urb := NewURB(base, n)
		logs := collect(urb, n)
		urb.Broadcast(0, []byte("u"))
		// Deliver a couple of frames, then crash 0 dropping half of the
		// rest.
		base.StepN(2)
		base.CrashPartialBroadcast(0, 0.5)
		base.Quiesce()
		// All correct processes must agree on whether "u" exists.
		count := 0
		for i := 1; i < n; i++ {
			if len(*logs[i]) > 0 {
				count++
			}
		}
		return count == 0 || count == n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestURBWithoutItFailsUnderPartialCrash(t *testing.T) {
	// Sanity check that the adversary actually bites: best-effort
	// broadcast must, for some seed, deliver to a strict non-empty
	// subset of correct processes.
	for seed := int64(0); seed < 100; seed++ {
		const n = 4
		base := NewSim(SimOptions{N: n, Seed: seed})
		logs := collect(base, n)
		base.Broadcast(0, []byte("u"))
		base.StepN(1)
		base.CrashPartialBroadcast(0, 0)
		base.Quiesce()
		count := 0
		for i := 1; i < n; i++ {
			if len(*logs[i]) > 0 {
				count++
			}
		}
		if count > 0 && count < n-1 {
			return // divergence demonstrated
		}
	}
	t.Fatalf("best-effort broadcast never diverged; adversary broken")
}

func TestURBDeduplicates(t *testing.T) {
	const n = 3
	base := NewSim(SimOptions{N: n, Seed: 3})
	urb := NewURB(base, n)
	logs := collect(urb, n)
	for k := 0; k < 5; k++ {
		urb.Broadcast(1, []byte(fmt.Sprintf("m%d", k)))
	}
	base.Quiesce()
	for i := 0; i < n; i++ {
		if len(*logs[i]) != 5 {
			t.Fatalf("process %d delivered %d (dedup broken?)", i, len(*logs[i]))
		}
	}
}

func TestDuplicatingNetworkDuplicates(t *testing.T) {
	found := false
	for seed := int64(0); seed < 30 && !found; seed++ {
		net := NewSim(SimOptions{N: 2, Seed: seed, DuplicateProb: 0.5})
		logs := collect(net, 2)
		for k := 0; k < 5; k++ {
			net.Broadcast(0, []byte{byte(k)})
		}
		net.Quiesce()
		if len(*logs[1]) > 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("duplicating adversary never duplicated")
	}
}

func TestURBDeduplicatesAtLeastOnceChannel(t *testing.T) {
	// URB over an at-least-once network restores exactly-once
	// application delivery (the assumption Algorithm 1 states).
	f := func(seed int64) bool {
		const n = 3
		base := NewSim(SimOptions{N: n, Seed: seed, DuplicateProb: 0.4})
		urb := NewURB(base, n)
		logs := collect(urb, n)
		for k := 0; k < 6; k++ {
			urb.Broadcast(k%n, []byte{byte(k)})
		}
		base.Quiesce()
		for i := 0; i < n; i++ {
			if len(*logs[i]) != 6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateProbValidation(t *testing.T) {
	for _, opts := range []SimOptions{
		{N: 2, FIFO: true, DuplicateProb: 0.5},
		{N: 2, DuplicateProb: 1.0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSim(%+v) should panic", opts)
				}
			}()
			NewSim(opts)
		}()
	}
}

func TestLiveNetworkDeliversAll(t *testing.T) {
	const n = 4
	net := NewLive(n)
	defer net.Close()
	var mu sync.Mutex
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		net.Attach(i, func(from int, payload []byte) {
			mu.Lock()
			counts[i]++
			mu.Unlock()
		})
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				net.Broadcast(id, []byte{byte(k)})
			}
		}(i)
	}
	wg.Wait()
	net.Drain()
	net.Close()
	mu.Lock()
	defer mu.Unlock()
	for i, c := range counts {
		if c != n*50 {
			t.Fatalf("process %d got %d of %d", i, c, n*50)
		}
	}
}

func TestLiveNetworkCrash(t *testing.T) {
	net := NewLive(2)
	defer net.Close()
	var mu sync.Mutex
	got := 0
	net.Attach(0, func(int, []byte) {})
	net.Attach(1, func(int, []byte) { mu.Lock(); got++; mu.Unlock() })
	net.Crash(1)
	net.Broadcast(0, []byte("x"))
	net.Drain()
	mu.Lock()
	defer mu.Unlock()
	if got != 0 {
		t.Fatalf("crashed process handled a message")
	}
}

func TestLiveURB(t *testing.T) {
	const n = 3
	base := NewLive(n)
	defer base.Close()
	urb := NewURB(base, n)
	var mu sync.Mutex
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		urb.Attach(i, func(from int, payload []byte) {
			mu.Lock()
			counts[i]++
			mu.Unlock()
		})
	}
	for k := 0; k < 20; k++ {
		urb.Broadcast(k%n, []byte("m"))
	}
	base.Drain()
	// Relays may still be in flight after the first drain; drain until
	// stable.
	for i := 0; i < 3; i++ {
		base.Drain()
	}
	mu.Lock()
	defer mu.Unlock()
	for i, c := range counts {
		if c != 20 {
			t.Fatalf("process %d delivered %d of 20", i, c)
		}
	}
}

// TestQuickSimAllSeedsConverge: for arbitrary seeds the simulator
// delivers every broadcast to every correct process exactly once —
// reliability of the substrate is what Proposition 4 builds on.
func TestQuickSimAllSeedsConverge(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn%4) + 2
		net := NewSim(SimOptions{N: n, Seed: seed})
		logs := collect(net, n)
		r := rand.New(rand.NewSource(seed))
		msgs := 5 + r.Intn(10)
		for k := 0; k < msgs; k++ {
			net.Broadcast(r.Intn(n), []byte{byte(k)})
		}
		net.Quiesce()
		for i := 0; i < n; i++ {
			if len(*logs[i]) != msgs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSimShardedDelivery: every (process, shard) handler receives
// exactly the messages broadcast on its shard, and self-delivery stays
// synchronous per shard.
func TestSimShardedDelivery(t *testing.T) {
	const n, shards = 3, 4
	net := NewSim(SimOptions{N: n, Seed: 5})
	var mu sync.Mutex
	got := make([][][]string, n)
	for i := 0; i < n; i++ {
		got[i] = make([][]string, shards)
		for s := 0; s < shards; s++ {
			i, s := i, s
			net.AttachShard(i, s, func(from int, payload []byte) {
				mu.Lock()
				got[i][s] = append(got[i][s], fmt.Sprintf("%d:%s", from, payload))
				mu.Unlock()
			})
		}
	}
	net.BroadcastShard(0, 2, []byte("a"))
	if len(got[0][2]) != 1 {
		t.Fatalf("self-delivery on shard 2 must be inline, got %v", got[0])
	}
	net.BroadcastShard(1, 0, []byte("b"))
	net.Quiesce()
	for i := 0; i < n; i++ {
		for s := 0; s < shards; s++ {
			want := 0
			switch s {
			case 2, 0:
				want = 1
			}
			if len(got[i][s]) != want {
				t.Fatalf("process %d shard %d delivered %v, want %d messages", i, s, got[i][s], want)
			}
		}
	}
	if got[2][2][0] != "0:a" || got[2][0][0] != "1:b" {
		t.Fatalf("messages landed on the wrong shard: %v", got[2])
	}
}

// TestSimShardedFIFOPerShard: with FIFO enabled, each shard observes
// its own messages from one sender in send order (shard traffic is a
// subsequence of the per-link FIFO stream).
func TestSimShardedFIFOPerShard(t *testing.T) {
	net := NewSim(SimOptions{N: 2, Seed: 9, FIFO: true})
	var got []string
	for s := 0; s < 2; s++ {
		net.AttachShard(0, s, func(int, []byte) {})
		s := s
		net.AttachShard(1, s, func(from int, payload []byte) {
			got = append(got, fmt.Sprintf("s%d:%s", s, payload))
		})
	}
	for k := 0; k < 6; k++ {
		net.BroadcastShard(0, k%2, []byte(fmt.Sprint(k)))
	}
	net.Quiesce()
	var shard0, shard1 []string
	for _, g := range got {
		if g[1] == '0' {
			shard0 = append(shard0, g)
		} else {
			shard1 = append(shard1, g)
		}
	}
	want0 := []string{"s0:0", "s0:2", "s0:4"}
	want1 := []string{"s1:1", "s1:3", "s1:5"}
	for i := range want0 {
		if shard0[i] != want0[i] || shard1[i] != want1[i] {
			t.Fatalf("per-shard FIFO violated: %v / %v", shard0, shard1)
		}
	}
}

// TestLiveShardedDeliversAll: concurrent broadcasts across shards all
// land on the right shard of every process.
func TestLiveShardedDeliversAll(t *testing.T) {
	const n, shards, per = 3, 4, 40
	net := NewLiveSharded(n, shards)
	defer net.Close()
	var mu sync.Mutex
	counts := make([][]int, n)
	for i := 0; i < n; i++ {
		counts[i] = make([]int, shards)
		for s := 0; s < shards; s++ {
			i, s := i, s
			net.AttachShard(i, s, func(from int, payload []byte) {
				mu.Lock()
				counts[i][s]++
				mu.Unlock()
			})
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		for s := 0; s < shards; s++ {
			wg.Add(1)
			go func(id, shard int) {
				defer wg.Done()
				for k := 0; k < per; k++ {
					net.BroadcastShard(id, shard, []byte{byte(k)})
				}
			}(i, s)
		}
	}
	wg.Wait()
	net.Drain()
	mu.Lock()
	defer mu.Unlock()
	for i := range counts {
		for s, c := range counts[i] {
			if c != n*per {
				t.Fatalf("process %d shard %d got %d of %d", i, s, c, n*per)
			}
		}
	}
}

// TestLiveMailboxBatchDrain: a backlog accumulated while the handler
// is slow is still delivered completely and in mailbox order — the
// batch-drain dispatcher must not lose or reorder envelopes.
func TestLiveMailboxBatchDrain(t *testing.T) {
	net := NewLive(2)
	defer net.Close()
	release := make(chan struct{})
	var mu sync.Mutex
	var got []byte
	first := true
	net.Attach(0, func(int, []byte) {})
	net.Attach(1, func(from int, payload []byte) {
		if first {
			first = false
			<-release // hold the dispatcher so a backlog builds up
		}
		mu.Lock()
		got = append(got, payload[0])
		mu.Unlock()
	})
	for k := 0; k < 100; k++ {
		net.Broadcast(0, []byte{byte(k)})
	}
	close(release)
	net.Drain()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 100 {
		t.Fatalf("delivered %d of 100", len(got))
	}
	for i, b := range got {
		if int(b) != i {
			t.Fatalf("mailbox order violated at %d: got %d", i, b)
		}
	}
}

// TestLiveCrashDropsBacklog: a crash takes effect for messages already
// queued (and even for a batch the dispatcher swapped out) — the
// batch-drain loop must re-check the crash flag per message.
func TestLiveCrashDropsBacklog(t *testing.T) {
	net := NewLive(2)
	defer net.Close()
	release := make(chan struct{})
	var mu sync.Mutex
	got := 0
	first := true
	net.Attach(0, func(int, []byte) {})
	net.Attach(1, func(from int, payload []byte) {
		if first {
			first = false
			<-release // hold the dispatcher while a backlog builds
		}
		mu.Lock()
		got++
		mu.Unlock()
	})
	net.Broadcast(0, []byte("head"))
	for k := 0; k < 99; k++ {
		net.Broadcast(0, []byte("backlog"))
	}
	net.Crash(1)
	close(release)
	net.Drain()
	mu.Lock()
	defer mu.Unlock()
	// Only deliveries that were already executing (the held head, and
	// possibly a few racing ahead of Crash) may land; the backlog
	// queued before the crash must be dropped, not fully delivered.
	if got == 100 {
		t.Fatal("crash did not stop delivery of the queued backlog")
	}
}

// TestLiveCrashSurvivesEnsureShards: a crashed process must stay
// crashed on shard channels added after the crash — EnsureShards grows
// the mailbox table mid-run (a live resize does this), and the new
// nodes must be born with the process's crash state.
func TestLiveCrashSurvivesEnsureShards(t *testing.T) {
	ln := NewLiveSharded(2, 2)
	defer ln.Close()
	var delivered [2]atomic.Uint64
	for id := 0; id < 2; id++ {
		p := id
		ln.AttachRouter(id, func(from, shard, epoch int, payload []byte) {
			delivered[p].Add(1)
		})
	}
	ln.Crash(1)
	ln.EnsureShards(4)
	// Deliveries to the crashed process's new shard channels must be
	// dropped, and its own broadcasts on them suppressed.
	ln.BroadcastShardEpoch(0, 3, 1, []byte("x"))
	ln.BroadcastShardEpoch(1, 3, 1, []byte("y"))
	ln.Drain()
	if got := delivered[1].Load(); got != 0 {
		t.Fatalf("crashed process handled %d deliveries on a post-crash shard channel", got)
	}
	if got := delivered[0].Load(); got != 1 {
		t.Fatalf("live process deliveries: got %d, want 1 (its own broadcast only)", got)
	}
}
