package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPNetwork is the real-wire transport: one instance per OS process,
// hosting exactly one process id of the cluster, connected to its
// peers over TCP. It implements the same Network / ShardedNetwork /
// ResizableNetwork surface as the in-process transports, so a replica
// (sharded or not) runs on it unchanged — the difference is that
// Broadcast frames the payload (wire.go) and hands it to per-peer
// outbound queues instead of in-memory mailboxes.
//
// Topology: links are unidirectional. This node dials every peer and
// uses the dialed connection only for sending; inbound connections
// (accepted on Listen) are only read. Each direction reconnects
// independently with exponential backoff.
//
// Backpressure: each peer's outbound queue is bounded (QueueLen).
// When a connected peer falls behind, Broadcast either blocks until
// the sender drains (the default, lossless policy) or drops the
// envelope and records it — DropOnFull — with ErrBackpressure visible
// through BackpressureErr. Either way memory stays bounded. While a
// peer link is down the queue discards instead of accumulating: the
// losses are counted like link losses and repaired by the digest
// exchange that runs automatically on every (re)connect, exactly as
// Cluster.Heal repairs a partition in-process.
//
// Handlers are invoked from per-connection reader goroutines —
// concurrently across peers, unlike the in-process transports' serial
// dispatchers. Replica.handle and the sharded router are safe for
// concurrent delivery (they are also driven concurrently by
// LiveNetwork's per-shard dispatchers).
type TCPNetwork struct {
	opts TCPOptions
	n    int
	ln   net.Listener

	mu       sync.Mutex
	handlers []Handler // local process's per-shard handlers
	router   EpochHandler
	provider SyncProvider
	clientFn ClientConnHandler
	conns    map[net.Conn]struct{} // open inbound conns, closed on Close

	peers []*tcpPeer // by process id; nil at the local id

	started atomic.Bool
	closed  atomic.Bool
	closeCh chan struct{}
	wg      sync.WaitGroup

	broadcasts atomic.Uint64
	sends      atomic.Uint64
	delivered  atomic.Uint64
	bytes      atomic.Uint64
	reconnects atomic.Uint64
	badFrames  atomic.Uint64
	// digestsSent / syncsApplied instrument the on-connect anti-entropy
	// exchange for tests and the stats dump.
	digestsSent  atomic.Uint64
	syncsApplied atomic.Uint64
}

// TCPOptions configures a TCPNetwork.
type TCPOptions struct {
	// ID is the local process id; Peers[ID] is ignored (it may hold
	// this node's own advertised address).
	ID int
	// Peers is the full cluster address list, one entry per process id.
	// The cluster size is len(Peers).
	Peers []string
	// Listen is the local listen address (e.g. ":7001" or
	// "127.0.0.1:0").
	Listen string
	// BatchBytes is the outbound write-coalescing threshold: a sender
	// drains its whole queue per wakeup and flushes to the socket every
	// BatchBytes of framed data (default 64 KiB). 1 disables batching —
	// one write per frame.
	BatchBytes int
	// QueueLen bounds each peer's outbound queue in envelopes
	// (default 4096).
	QueueLen int
	// DropOnFull selects the drop backpressure policy: a full queue
	// rejects the envelope (counted, ErrBackpressure) instead of
	// blocking the broadcaster.
	DropOnFull bool
	// MaxFrame bounds accepted frame bodies (default MaxFrame).
	MaxFrame int
	// ObjectName, when set, is carried in every hello this node sends
	// and checked against every hello it receives: a peer or client
	// speaking a different (non-empty) object name is refused at
	// handshake, before any data frame is interpreted. Empty disables
	// both the claim and the check.
	ObjectName string
	// DialTimeout, RetryMin and RetryMax shape the reconnect loop
	// (defaults 2s, 50ms, 2s).
	DialTimeout time.Duration
	RetryMin    time.Duration
	RetryMax    time.Duration
	// Logf, when set, receives connection lifecycle diagnostics.
	Logf func(format string, args ...any)
}

// SyncProvider is the transport's hook into the replica's anti-entropy
// machinery (core.WireSync): the payloads are opaque to the transport,
// which only moves them. On every (re)connect of a peer link — in
// either direction — the transport queues this node's digest to that
// peer; a received digest is answered with a sync reply, and a
// received reply is applied. Both sides do this, so any link cycle
// repairs both directions' losses, like Cluster.Heal's pull pairs.
type SyncProvider interface {
	// DigestPayload encodes this node's current digest.
	DigestPayload() ([]byte, error)
	// SyncReply encodes what a peer holding the given digest is
	// missing; nil means nothing.
	SyncReply(digest []byte) ([]byte, error)
	// ApplySync lands a received reply.
	ApplySync(payload []byte) error
}

// ClientConnHandler serves one accepted client connection (hello
// already consumed). The transport closes conn when the handler
// returns, and closes it underneath the handler on Close to unblock
// its reads.
type ClientConnHandler func(conn net.Conn, br *bufio.Reader)

// ErrBackpressure reports that a bounded peer queue rejected envelopes
// under the DropOnFull policy.
var ErrBackpressure = errors.New("transport: peer send queue full (backpressure)")

type tcpPeer struct {
	net        *TCPNetwork
	id         int
	addr       string
	mb         *mailbox
	connected  atomic.Bool
	connects   atomic.Uint64
	sentFrames atomic.Uint64
	sentBytes  atomic.Uint64
}

// NewTCP validates the options and binds the listener (so ":0" works:
// Addr reports the bound address before Start). Attach the replica and
// sync provider, then Start.
func NewTCP(opts TCPOptions) (*TCPNetwork, error) {
	n := len(opts.Peers)
	if n <= 0 {
		return nil, fmt.Errorf("transport: TCPOptions.Peers must name every process")
	}
	if opts.ID < 0 || opts.ID >= n {
		return nil, fmt.Errorf("transport: TCPOptions.ID %d out of range [0,%d)", opts.ID, n)
	}
	for i, a := range opts.Peers {
		if i != opts.ID && a == "" {
			return nil, fmt.Errorf("transport: TCPOptions.Peers[%d] is empty", i)
		}
	}
	if opts.BatchBytes <= 0 {
		opts.BatchBytes = 64 << 10
	}
	if opts.QueueLen <= 0 {
		opts.QueueLen = 4096
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 2 * time.Second
	}
	if opts.RetryMin <= 0 {
		opts.RetryMin = 50 * time.Millisecond
	}
	if opts.RetryMax <= 0 {
		opts.RetryMax = 2 * time.Second
	}
	ln, err := net.Listen("tcp", opts.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", opts.Listen, err)
	}
	t := &TCPNetwork{
		opts:    opts,
		n:       n,
		ln:      ln,
		conns:   make(map[net.Conn]struct{}),
		closeCh: make(chan struct{}),
		peers:   make([]*tcpPeer, n),
	}
	for i, a := range opts.Peers {
		if i == opts.ID {
			continue
		}
		p := &tcpPeer{net: t, id: i, addr: a, mb: newMailbox(opts.QueueLen)}
		// Born discarding: nothing accumulates (or blocks) before the
		// link is up; the on-connect digest exchange covers the gap.
		p.mb.setDiscard(true)
		t.peers[i] = p
	}
	return t, nil
}

// Start launches the accept loop and one dialer per peer. Call it
// after attaching the replica (Attach/AttachRouter) and the sync
// provider, so early inbound traffic finds its handler.
func (t *TCPNetwork) Start() {
	if !t.started.CompareAndSwap(false, true) {
		return
	}
	t.wg.Add(1)
	go t.acceptLoop()
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		t.wg.Add(1)
		go p.run()
	}
}

// Addr returns the bound listen address (resolving ":0").
func (t *TCPNetwork) Addr() string { return t.ln.Addr().String() }

// N returns the cluster size.
func (t *TCPNetwork) N() int { return t.n }

// SetSyncProvider installs the anti-entropy hook; set it before Start.
func (t *TCPNetwork) SetSyncProvider(p SyncProvider) {
	t.mu.Lock()
	t.provider = p
	t.mu.Unlock()
}

// SetClientHandler installs the serving callback for accepted client
// connections; without one, client dials are closed immediately.
func (t *TCPNetwork) SetClientHandler(fn ClientConnHandler) {
	t.mu.Lock()
	t.clientFn = fn
	t.mu.Unlock()
}

func (t *TCPNetwork) logf(format string, args ...any) {
	if t.opts.Logf != nil {
		t.opts.Logf(format, args...)
	}
}

func (t *TCPNetwork) maxFrame() int {
	if t.opts.MaxFrame > 0 {
		return t.opts.MaxFrame
	}
	return MaxFrame
}

// Attach implements Network. A TCPNetwork hosts one process: attaching
// any other id is a wiring bug and panics.
func (t *TCPNetwork) Attach(id int, h Handler) { t.AttachShard(id, 0, h) }

// AttachShard implements ShardedNetwork (local process only).
func (t *TCPNetwork) AttachShard(id, shard int, h Handler) {
	if id != t.opts.ID {
		panic(fmt.Sprintf("transport: TCPNetwork hosts process %d only; Attach(%d) is a wiring bug", t.opts.ID, id))
	}
	t.mu.Lock()
	for len(t.handlers) <= shard {
		t.handlers = append(t.handlers, nil)
	}
	t.handlers[shard] = h
	t.mu.Unlock()
}

// AttachRouter implements ResizableNetwork (local process only).
func (t *TCPNetwork) AttachRouter(id int, h EpochHandler) {
	if id != t.opts.ID {
		panic(fmt.Sprintf("transport: TCPNetwork hosts process %d only; AttachRouter(%d) is a wiring bug", t.opts.ID, id))
	}
	t.mu.Lock()
	t.router = h
	t.mu.Unlock()
}

// EnsureShards implements ResizableNetwork: shard channels are
// implicit in the frame tags, so growth is a no-op. (Coordinated
// cluster Resize is not supported across processes — each daemon would
// need a distributed drain barrier; resize wire clusters by restart.)
func (t *TCPNetwork) EnsureShards(int) {}

// Broadcast implements Network.
func (t *TCPNetwork) Broadcast(from int, payload []byte) {
	t.BroadcastShardEpoch(from, 0, 0, payload)
}

// BroadcastShard implements ShardedNetwork (epoch 0).
func (t *TCPNetwork) BroadcastShard(from, shard int, payload []byte) {
	t.BroadcastShardEpoch(from, shard, 0, payload)
}

// BroadcastShardEpoch implements ResizableNetwork: self-delivery is
// inline (the paper's instantaneous self-receipt, preserving the
// replica's stashed-payload identity optimization), remote copies are
// framed and queued per peer under the configured backpressure policy.
func (t *TCPNetwork) BroadcastShardEpoch(from, shard, epoch int, payload []byte) {
	if from != t.opts.ID {
		panic(fmt.Sprintf("transport: TCPNetwork hosts process %d only; Broadcast from %d is a wiring bug", t.opts.ID, from))
	}
	if t.closed.Load() {
		return
	}
	t.broadcasts.Add(1)
	t.sends.Add(1)
	t.delivered.Add(1)
	t.bytes.Add(uint64(len(payload)))
	t.deliver(from, shard, epoch, payload)
	block := !t.opts.DropOnFull
	for id, p := range t.peers {
		if p == nil {
			continue
		}
		// The payload slice is shared across queues, never copied per
		// recipient; the sender goroutine copies it into its staging
		// buffer when framing.
		e := envelope{kind: KindData, from: from, to: id, shard: shard, epoch: epoch, payload: payload}
		if p.mb.push(e, block) == pushQueued {
			t.sends.Add(1)
			t.bytes.Add(uint64(len(payload)))
		}
	}
}

// deliver dispatches an inbound (or self) data payload to the local
// router or per-shard handler.
func (t *TCPNetwork) deliver(from, shard, epoch int, payload []byte) {
	t.mu.Lock()
	rt := t.router
	var h Handler
	if rt == nil && shard >= 0 && shard < len(t.handlers) {
		h = t.handlers[shard]
	}
	t.mu.Unlock()
	if rt != nil {
		rt(from, shard, epoch, payload)
		return
	}
	if h != nil {
		h(from, payload)
	}
}

// queueDigest enqueues this node's digest to peer p — the
// sync-on-connect exchange, run on both ends of every link
// establishment.
func (t *TCPNetwork) queueDigest(p *tcpPeer) {
	t.mu.Lock()
	prov := t.provider
	t.mu.Unlock()
	if prov == nil {
		return
	}
	d, err := prov.DigestPayload()
	if err != nil {
		t.logf("digest for peer %d: %v", p.id, err)
		return
	}
	if p.mb.push(envelope{kind: KindDigest, from: t.opts.ID, to: p.id, payload: d}, true) == pushQueued {
		t.digestsSent.Add(1)
	}
}

// run is a peer's dialer loop: dial, hello, hand the connection to the
// sender, reconnect with exponential backoff on any failure.
func (p *tcpPeer) run() {
	defer p.net.wg.Done()
	backoff := p.net.opts.RetryMin
	for !p.net.closed.Load() {
		conn, err := net.DialTimeout("tcp", p.addr, p.net.opts.DialTimeout)
		if err != nil {
			if !p.pause(backoff) {
				return
			}
			backoff *= 2
			if backoff > p.net.opts.RetryMax {
				backoff = p.net.opts.RetryMax
			}
			continue
		}
		backoff = p.net.opts.RetryMin
		err = p.serve(conn)
		conn.Close()
		if p.net.closed.Load() {
			return
		}
		if err != nil {
			p.net.logf("peer %d (%s): send link lost: %v", p.id, p.addr, err)
		}
		if !p.pause(backoff) {
			return
		}
	}
}

// pause sleeps for d, waking early on Close; it reports whether the
// loop should continue.
func (p *tcpPeer) pause(d time.Duration) bool {
	select {
	case <-p.net.closeCh:
		return false
	case <-time.After(d):
		return !p.net.closed.Load()
	}
}

// serve runs one established outbound connection: hello, then the
// batched sender loop until the link or the network dies.
func (p *tcpPeer) serve(conn net.Conn) error {
	hello := AppendFrame(nil, Frame{
		Kind: KindHello, From: p.net.opts.ID,
		Payload: helloPayload(RolePeer, p.net.n, p.net.opts.ObjectName),
	})
	if _, err := conn.Write(hello); err != nil {
		return err
	}
	if p.connects.Add(1) > 1 {
		p.net.reconnects.Add(1)
	}
	p.mb.setDiscard(false)
	p.connected.Store(true)
	defer func() {
		p.connected.Store(false)
		p.mb.setDiscard(true)
	}()
	// Sync-on-connect, outbound side: tell the peer what we hold so it
	// can send back what we lack.
	p.net.queueDigest(p)

	// The send link is unidirectional — the peer never writes on it —
	// so a read can only return when the link dies (FIN, RST, or our
	// own Close). The monitor turns that into liveness for an idle
	// sender: without it, a dead link would go unnoticed until the next
	// broadcast, and a restarted peer would wait arbitrarily long for
	// its reconnect digest exchange.
	dead := make(chan struct{})
	go func() {
		var buf [16]byte
		for {
			if _, err := conn.Read(buf[:]); err != nil {
				break
			}
		}
		close(dead)
		conn.Close()
		p.mb.kick()
	}()

	var batch []envelope
	out := make([]byte, 0, p.net.opts.BatchBytes+4096)
	for {
		var ok bool
		batch, ok = p.mb.swapWait(batch)
		if !ok {
			return nil // network closed
		}
		out = out[:0]
		var err error
		for i := range batch {
			e := &batch[i]
			out = AppendFrame(out, Frame{Kind: e.kind, From: e.from, Shard: e.shard, Epoch: e.epoch, Payload: e.payload})
			p.sentFrames.Add(1)
			// Size-bounded coalescing: many queued envelopes become one
			// write, but the staging buffer never grows past the batch
			// threshold by more than one frame.
			if len(out) >= p.net.opts.BatchBytes {
				if err = p.write(conn, out); err != nil {
					break
				}
				out = out[:0]
			}
		}
		if err == nil && len(out) > 0 {
			err = p.write(conn, out)
		}
		clearTail(batch, 0)
		p.mb.idle()
		if err != nil {
			// Envelopes framed but not written are lost with the
			// connection; the reconnect digest exchange repairs them.
			return err
		}
		select {
		case <-dead:
			return errors.New("transport: peer closed the link")
		default:
		}
	}
}

func (p *tcpPeer) write(conn net.Conn, buf []byte) error {
	nw, err := conn.Write(buf)
	p.sentBytes.Add(uint64(nw))
	return err
}

// acceptLoop accepts inbound connections (peer receive links and
// clients) until Close.
func (t *TCPNetwork) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			if t.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			t.logf("accept: %v", err)
			continue
		}
		t.mu.Lock()
		if t.closed.Load() {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.serveConn(conn)
	}
}

// forget unregisters a finished inbound connection.
func (t *TCPNetwork) forget(conn net.Conn) {
	t.mu.Lock()
	delete(t.conns, conn)
	t.mu.Unlock()
}

// serveConn reads one inbound connection: a hello classifies it as a
// peer receive link or a client, then frames are dispatched until the
// stream ends or turns malformed. A bad frame closes the connection
// (and is counted) without disturbing the rest of the daemon — the
// remote side redials if it was a real peer.
func (t *TCPNetwork) serveConn(conn net.Conn) {
	defer t.wg.Done()
	br := bufio.NewReaderSize(conn, 64<<10)
	hello, err := ReadFrame(br, t.maxFrame())
	if err != nil || hello.Kind != KindHello {
		t.badFrames.Add(1)
		t.forget(conn)
		conn.Close()
		return
	}
	role, size, name, err := parseHello(hello.Payload)
	if err != nil {
		t.badFrames.Add(1)
		t.forget(conn)
		conn.Close()
		return
	}
	mismatch := t.opts.ObjectName != "" && name != "" && name != t.opts.ObjectName
	if role == RoleClient {
		// The conn stays registered so Close unblocks the handler's read.
		defer func() {
			t.forget(conn)
			conn.Close()
		}()
		if mismatch {
			// Tell the client what went wrong before hanging up — a
			// silent close would read as a network fault, not a
			// configuration error.
			t.badFrames.Add(1)
			msg := fmt.Sprintf("object mismatch: daemon serves %q, client speaks %q", t.opts.ObjectName, name)
			conn.Write(AppendFrame(nil, Frame{Kind: KindError, From: -1, Payload: []byte(msg)}))
			return
		}
		t.mu.Lock()
		fn := t.clientFn
		t.mu.Unlock()
		if fn != nil {
			fn(conn, br)
		}
		return
	}
	from := hello.From
	if mismatch {
		t.logf("rejecting peer hello: object mismatch: this daemon serves %q, peer %d speaks %q", t.opts.ObjectName, from, name)
		t.badFrames.Add(1)
		t.forget(conn)
		conn.Close()
		return
	}
	if size != t.n || from < 0 || from >= t.n || from == t.opts.ID {
		t.logf("rejecting peer hello: from=%d size=%d (cluster size %d)", from, size, t.n)
		t.badFrames.Add(1)
		t.forget(conn)
		conn.Close()
		return
	}
	// Sync-on-connect, inbound side: the peer just (re)established its
	// send link to us; queue our digest on our own send link so we
	// recover whatever we missed while it was down.
	if p := t.peers[from]; p != nil {
		t.queueDigest(p)
	}
	defer func() {
		t.forget(conn)
		conn.Close()
	}()
	for {
		f, err := ReadFrame(br, t.maxFrame())
		if err != nil {
			var fe *FrameError
			if errors.As(err, &fe) {
				t.badFrames.Add(1)
				t.logf("peer %d: dropping receive link: %v", from, err)
			} else if err != io.EOF && !t.closed.Load() {
				t.logf("peer %d: receive link lost: %v", from, err)
			}
			return
		}
		t.handleFrame(from, f)
	}
}

// handleFrame dispatches one inbound peer frame.
func (t *TCPNetwork) handleFrame(from int, f Frame) {
	switch f.Kind {
	case KindData:
		if f.From < 0 || f.From >= t.n {
			t.badFrames.Add(1)
			return
		}
		t.delivered.Add(1)
		t.deliver(f.From, f.Shard, f.Epoch, f.Payload)
	case KindDigest:
		t.mu.Lock()
		prov := t.provider
		t.mu.Unlock()
		if prov == nil {
			return
		}
		reply, err := prov.SyncReply(f.Payload)
		if err != nil {
			t.logf("sync reply for peer %d: %v", from, err)
			return
		}
		if reply == nil {
			return
		}
		if p := t.peers[from]; p != nil {
			p.mb.push(envelope{kind: KindSyncReply, from: t.opts.ID, to: from, payload: reply}, true)
		}
	case KindSyncReply:
		t.mu.Lock()
		prov := t.provider
		t.mu.Unlock()
		if prov == nil {
			return
		}
		if err := prov.ApplySync(f.Payload); err != nil {
			t.logf("applying sync from peer %d: %v", from, err)
			return
		}
		t.syncsApplied.Add(1)
	default:
		// Unknown peer frame kinds are skipped, not fatal: the framing
		// is self-delimiting, so newer peers can add kinds.
	}
}

// Flush blocks until every peer's outbound queue has drained to the
// socket (or the timeout expires). Queues of down peers are empty by
// construction (discard mode). Written is not delivered — use the
// replica-level state checks for convergence.
func (t *TCPNetwork) Flush(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		idle := true
		for _, p := range t.peers {
			if p == nil {
				continue
			}
			if n, _, _, _, busy := p.mb.depth(); n > 0 || busy {
				idle = false
				break
			}
		}
		if idle {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: flush timed out after %v", timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// BackpressureErr returns ErrBackpressure if any bounded peer queue
// has rejected envelopes under the DropOnFull policy, nil otherwise.
// The condition is sticky: it reports history, not current pressure.
func (t *TCPNetwork) BackpressureErr() error {
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		if _, _, full, _, _ := p.mb.depth(); full > 0 {
			return ErrBackpressure
		}
	}
	return nil
}

// SyncNow queues this node's digest to every currently connected peer
// — a manual anti-entropy round on top of the automatic on-connect
// exchange.
func (t *TCPNetwork) SyncNow() {
	for _, p := range t.peers {
		if p != nil && p.connected.Load() {
			t.queueDigest(p)
		}
	}
}

// BadFrames reports how many malformed or protocol-violating frames
// (and connections) this node has rejected.
func (t *TCPNetwork) BadFrames() uint64 { return t.badFrames.Load() }

// SyncExchanges reports the sync-on-connect counters: digests queued
// to peers, and sync replies applied locally.
func (t *TCPNetwork) SyncExchanges() (digestsSent, syncsApplied uint64) {
	return t.digestsSent.Load(), t.syncsApplied.Load()
}

// PeerStats is the per-link observability surface: queue depth and
// connection churn per peer.
type PeerStats struct {
	Peer        int
	Addr        string
	Connected   bool
	QueueDepth  int
	QueueBytes  int
	Connects    uint64 // successful dials of the send link
	SentFrames  uint64
	SentBytes   uint64
	DroppedFull uint64 // rejected by the bound (DropOnFull policy)
	DroppedDown uint64 // discarded while the link was down
}

// PeerStats returns one entry per remote peer, ordered by id.
func (t *TCPNetwork) PeerStats() []PeerStats {
	out := make([]PeerStats, 0, t.n-1)
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		depth, bytes, full, down, _ := p.mb.depth()
		out = append(out, PeerStats{
			Peer:        p.id,
			Addr:        p.addr,
			Connected:   p.connected.Load(),
			QueueDepth:  depth,
			QueueBytes:  bytes,
			Connects:    p.connects.Load(),
			SentFrames:  p.sentFrames.Load(),
			SentBytes:   p.sentBytes.Load(),
			DroppedFull: full,
			DroppedDown: down,
		})
	}
	return out
}

// Stats returns a copy of the traffic counters. Down-peer discards are
// attributed to DroppedLink (they are link losses, repaired by
// anti-entropy like any other), bound rejections to DroppedFull.
func (t *TCPNetwork) Stats() Stats {
	s := Stats{
		Broadcasts: t.broadcasts.Load(),
		Sends:      t.sends.Load(),
		Delivered:  t.delivered.Load(),
		Bytes:      t.bytes.Load(),
		Reconnects: t.reconnects.Load(),
	}
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		_, _, full, down, _ := p.mb.depth()
		s.DroppedFull += full
		s.DroppedLink += down
	}
	return s
}

// Close shuts the transport down: the listener and every connection
// close, dialers and readers exit, queued envelopes are dropped.
func (t *TCPNetwork) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(t.closeCh)
	t.ln.Close()
	for _, p := range t.peers {
		if p != nil {
			p.mb.close()
		}
	}
	t.mu.Lock()
	for c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	if t.started.Load() {
		t.wg.Wait()
	}
	return nil
}

var (
	_ Network          = (*TCPNetwork)(nil)
	_ ShardedNetwork   = (*TCPNetwork)(nil)
	_ ResizableNetwork = (*TCPNetwork)(nil)
)
