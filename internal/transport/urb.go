package transport

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// URB layers uniform reliable broadcast over a best-effort network:
// when a process delivers a message for the first time it relays it to
// everyone before handing it to the application. This guarantees that
// if *any* correct process delivers a broadcast, *every* correct
// process eventually delivers it — even when the original sender
// crashed partway through its broadcast (SimNetwork.
// CrashPartialBroadcast). Algorithm 1 assumes exactly this "reliably
// broadcasting" primitive (§VII-B); without it, a partial crash could
// leave correct replicas permanently disagreeing on the update set.
//
// The cost is the classic one: every process retransmits every message
// once, so an application-level broadcast costs up to n² point-to-point
// sends on the underlying network. §VII-C's "a unique message is
// broadcast for each update" counts application-level broadcasts; the
// experiment harness reports both levels.
type URB struct {
	inner Network
	n     int
	nodes []*urbNode
}

type urbNode struct {
	mu sync.Mutex
	id int
	// Dedup state, bounded: URB sequence numbers are dense per origin
	// (the sender assigns 1, 2, 3, ...), so "every frame up to contig[o]
	// was seen" is one integer per origin; only out-of-order arrivals
	// park in ahead until the gap below them fills, at which point the
	// watermark advances and their entries are deleted. Once delivery
	// settles, ahead is empty and the dedup state is n integers — the
	// historical seen-map grew by one entry per frame ever received and
	// never shrank.
	contig  []uint64
	ahead   map[urbKey]bool
	deliver Handler
	nextSeq uint64
	urb     *URB
}

type urbKey struct {
	origin int
	seq    uint64
}

// NewURB wraps a best-effort network carrying n processes.
func NewURB(inner Network, n int) *URB {
	u := &URB{inner: inner, n: n, nodes: make([]*urbNode, n)}
	for i := range u.nodes {
		u.nodes[i] = &urbNode{id: i, contig: make([]uint64, n), ahead: map[urbKey]bool{}, urb: u}
	}
	return u
}

// DedupLoad reports the total number of out-of-order dedup entries
// currently parked across all processes — the part of the dedup state
// that is not covered by the per-origin contiguous watermarks. On a
// settled network it returns to zero however many frames (and
// duplicates) were delivered; the property tests assert exactly that.
func (u *URB) DedupLoad() int {
	total := 0
	for _, nd := range u.nodes {
		nd.mu.Lock()
		total += len(nd.ahead)
		nd.mu.Unlock()
	}
	return total
}

// Attach implements Network: h receives application payloads exactly
// once per application broadcast, attributed to the originating
// process.
func (u *URB) Attach(id int, h Handler) {
	node := u.nodes[id]
	node.mu.Lock()
	node.deliver = h
	node.mu.Unlock()
	u.inner.Attach(id, node.onRaw)
}

// Broadcast implements Network.
func (u *URB) Broadcast(from int, payload []byte) {
	node := u.nodes[from]
	node.mu.Lock()
	node.nextSeq++
	seq := node.nextSeq
	node.mu.Unlock()
	u.inner.Broadcast(from, encodeURB(from, seq, payload))
}

// onRaw handles a frame from the underlying network: deduplicate,
// relay, deliver.
func (nd *urbNode) onRaw(_ int, frame []byte) {
	origin, seq, payload, err := decodeURB(frame)
	if err != nil {
		panic(fmt.Sprintf("transport: corrupted URB frame: %v", err))
	}
	if origin < 0 || origin >= len(nd.contig) {
		panic(fmt.Sprintf("transport: corrupted URB frame: origin %d out of range", origin))
	}
	key := urbKey{origin: origin, seq: seq}
	nd.mu.Lock()
	if seq <= nd.contig[origin] || nd.ahead[key] {
		nd.mu.Unlock()
		return
	}
	if seq == nd.contig[origin]+1 {
		nd.contig[origin]++
		// Fold any parked successors into the watermark.
		for nd.ahead[urbKey{origin: origin, seq: nd.contig[origin] + 1}] {
			delete(nd.ahead, urbKey{origin: origin, seq: nd.contig[origin] + 1})
			nd.contig[origin]++
		}
	} else {
		nd.ahead[key] = true
	}
	deliver := nd.deliver
	nd.mu.Unlock()
	// Relay before delivering: once anyone applies the update, the
	// frame is already on its way to everyone else.
	if origin != nd.id {
		nd.urb.inner.Broadcast(nd.id, frame)
	}
	if deliver != nil {
		deliver(origin, payload)
	}
}

func encodeURB(origin int, seq uint64, payload []byte) []byte {
	var buf [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(origin))
	n += binary.PutUvarint(buf[n:], seq)
	frame := make([]byte, 0, n+len(payload))
	frame = append(frame, buf[:n]...)
	return append(frame, payload...)
}

func decodeURB(frame []byte) (origin int, seq uint64, payload []byte, err error) {
	o, n := binary.Uvarint(frame)
	if n <= 0 {
		return 0, 0, nil, fmt.Errorf("bad origin")
	}
	s, m := binary.Uvarint(frame[n:])
	if m <= 0 {
		return 0, 0, nil, fmt.Errorf("bad seq")
	}
	return int(o), s, frame[n+m:], nil
}

var _ Network = (*URB)(nil)
