package transport

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// freeAddrs reserves n distinct loopback addresses by binding and
// releasing ephemeral listeners. The tiny window before the cluster
// rebinds them is an accepted test-only race.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserving port: %v", err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// newTCPCluster builds and starts n interconnected TCPNetworks; mutate
// opts per node via tweak before Start.
func newTCPCluster(t *testing.T, n int, tweak func(id int, o *TCPOptions, net *TCPNetwork)) []*TCPNetwork {
	t.Helper()
	addrs := freeAddrs(t, n)
	nets := make([]*TCPNetwork, n)
	for i := range nets {
		o := TCPOptions{ID: i, Peers: addrs, Listen: addrs[i], RetryMin: 5 * time.Millisecond}
		var err error
		if tweak != nil {
			tweak(i, &o, nil)
		}
		nets[i], err = NewTCP(o)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	for i, tn := range nets {
		if tweak != nil {
			tweak(i, nil, tn)
		}
		tn.Start()
	}
	t.Cleanup(func() {
		for _, tn := range nets {
			tn.Close()
		}
	})
	return nets
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestMailboxBoundedPolicies(t *testing.T) {
	m := newMailbox(2)
	e := envelope{payload: []byte("x")}
	if got := m.push(e, false); got != pushQueued {
		t.Fatalf("push 1 = %d", got)
	}
	if got := m.push(e, false); got != pushQueued {
		t.Fatalf("push 2 = %d", got)
	}
	if got := m.push(e, false); got != pushDroppedFull {
		t.Fatalf("push on full without block = %d, want pushDroppedFull", got)
	}
	// A blocking push parks until the consumer swaps the queue out.
	done := make(chan int, 1)
	go func() { done <- m.push(e, true) }()
	select {
	case got := <-done:
		t.Fatalf("blocking push on full returned early: %d", got)
	case <-time.After(20 * time.Millisecond):
	}
	batch, ok := m.swapWait(nil)
	if !ok || len(batch) != 2 {
		t.Fatalf("swapWait = %d envelopes, ok=%v", len(batch), ok)
	}
	m.idle()
	if got := <-done; got != pushQueued {
		t.Fatalf("unblocked push = %d", got)
	}
	// Discard mode clears the queue and rejects pushes as down-drops.
	m.setDiscard(true)
	if got := m.push(e, true); got != pushDroppedDown {
		t.Fatalf("push in discard mode = %d", got)
	}
	n, _, droppedFull, droppedDown, _ := m.depth()
	if n != 0 || droppedFull != 1 || droppedDown != 2 {
		t.Fatalf("depth=%d droppedFull=%d droppedDown=%d; want 0,1,2", n, droppedFull, droppedDown)
	}
	m.close()
	if got := m.push(e, true); got != pushDroppedDown {
		t.Fatalf("push after close = %d", got)
	}
	if _, ok := m.swapWait(nil); ok {
		t.Fatal("swapWait after close+drain must report closed")
	}
}

// tcpSink attaches a recording router to a node.
type tcpSink struct {
	mu   sync.Mutex
	msgs []string
}

func (s *tcpSink) route(from, shard, epoch int, payload []byte) {
	s.mu.Lock()
	s.msgs = append(s.msgs, fmt.Sprintf("%d/%d/%d:%s", from, shard, epoch, payload))
	s.mu.Unlock()
}

func (s *tcpSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.msgs)
}

func (s *tcpSink) has(msg string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.msgs {
		if m == msg {
			return true
		}
	}
	return false
}

func TestTCPBroadcastFanout(t *testing.T) {
	const n = 3
	sinks := make([]*tcpSink, n)
	nets := newTCPCluster(t, n, func(id int, o *TCPOptions, tn *TCPNetwork) {
		if tn != nil {
			sinks[id] = &tcpSink{}
			tn.AttachRouter(id, sinks[id].route)
		}
	})
	// Self-delivery is inline, like the in-process transports — it
	// needs no link at all.
	nets[0].BroadcastShardEpoch(0, 2, 4, []byte("hello"))
	if !sinks[0].has("0/2/4:hello") {
		t.Fatalf("self delivery missing: %v", sinks[0].msgs)
	}
	// Remote fan-out requires the links: broadcasts before a link is up
	// are deliberately discarded (repaired by the digest exchange in
	// the full stack), so wait for the mesh first.
	waitUntil(t, 5*time.Second, "mesh up", func() bool {
		for _, tn := range nets {
			for _, ps := range tn.PeerStats() {
				if !ps.Connected {
					return false
				}
			}
		}
		return true
	})
	nets[0].BroadcastShardEpoch(0, 2, 4, []byte("tagged"))
	for i, tn := range nets {
		tn.Broadcast(i, []byte(fmt.Sprintf("m%d", i)))
	}
	waitUntil(t, 5*time.Second, "full fan-out", func() bool {
		for i := range sinks {
			for j := range nets {
				if !sinks[i].has(fmt.Sprintf("%d/0/0:m%d", j, j)) {
					return false
				}
			}
			// The shard/epoch tags must survive the wire.
			if !sinks[i].has("0/2/4:tagged") {
				return false
			}
		}
		return true
	})
	s := nets[0].Stats()
	if s.Broadcasts != 3 || s.Delivered < 3 {
		t.Fatalf("node 0 stats: %+v", s)
	}
}

func TestTCPDownPeerDiscardsInsteadOfBlocking(t *testing.T) {
	// Node 0's only peer address is reserved but unbound: the link never
	// comes up, and broadcasts must return immediately as counted link
	// drops (wait-freedom against a dead peer), not block or accumulate.
	addrs := freeAddrs(t, 2)
	tn, err := NewTCP(TCPOptions{ID: 0, Peers: addrs, Listen: addrs[0], RetryMin: time.Millisecond, QueueLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Close()
	tn.AttachRouter(0, (&tcpSink{}).route)
	tn.Start()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			tn.Broadcast(0, []byte("x"))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("broadcasts to a down peer blocked")
	}
	if s := tn.Stats(); s.DroppedLink == 0 {
		t.Fatalf("expected down-peer drops, stats %+v", s)
	}
	if err := tn.BackpressureErr(); err != nil {
		t.Fatalf("down-peer drops must not count as backpressure: %v", err)
	}
}

func TestTCPBackpressureDropOnFull(t *testing.T) {
	// Receiver's router blocks, so it stops reading; the sender's
	// socket writes stall, its bounded queue fills, and the drop policy
	// rejects the overflow visibly instead of growing without bound.
	release := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(release) })
	var blocked tcpSink
	nets := newTCPCluster(t, 2, func(id int, o *TCPOptions, tn *TCPNetwork) {
		if o != nil && id == 0 {
			o.DropOnFull = true
			o.QueueLen = 4
			o.BatchBytes = 1 << 20
		}
		if tn != nil {
			if id == 1 {
				tn.AttachRouter(1, func(from, shard, epoch int, payload []byte) {
					<-release
				})
			} else {
				tn.AttachRouter(0, blocked.route)
			}
		}
	})
	waitUntil(t, 5*time.Second, "link up", func() bool {
		return nets[0].PeerStats()[0].Connected
	})
	payload := make([]byte, 256<<10)
	for i := 0; i < 200 && nets[0].BackpressureErr() == nil; i++ {
		nets[0].Broadcast(0, payload)
	}
	if err := nets[0].BackpressureErr(); err != ErrBackpressure {
		t.Fatalf("BackpressureErr = %v, want ErrBackpressure", err)
	}
	if s := nets[0].Stats(); s.DroppedFull == 0 {
		t.Fatalf("expected DroppedFull > 0, stats %+v", s)
	}
	once.Do(func() { close(release) })
}

// fakeSync is a scripted SyncProvider recording the exchange.
type fakeSync struct {
	name    string
	mu      sync.Mutex
	applied []string
}

func (f *fakeSync) DigestPayload() ([]byte, error) { return []byte("digest-" + f.name), nil }
func (f *fakeSync) SyncReply(d []byte) ([]byte, error) {
	return []byte(f.name + "-reply-to-" + string(d)), nil
}
func (f *fakeSync) ApplySync(p []byte) error {
	f.mu.Lock()
	f.applied = append(f.applied, string(p))
	f.mu.Unlock()
	return nil
}
func (f *fakeSync) appliedFrom(peer string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, a := range f.applied {
		if strings.Contains(a, peer+"-reply-to-digest-"+f.name) {
			return true
		}
	}
	return false
}

func TestTCPSyncOnConnectAndReconnect(t *testing.T) {
	addrs := freeAddrs(t, 2)
	mk := func(id int, name string) (*TCPNetwork, *fakeSync) {
		tn, err := NewTCP(TCPOptions{ID: id, Peers: addrs, Listen: addrs[id], RetryMin: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		fs := &fakeSync{name: name}
		tn.AttachRouter(id, (&tcpSink{}).route)
		tn.SetSyncProvider(fs)
		tn.Start()
		return tn, fs
	}
	a, fsA := mk(0, "a")
	defer a.Close()
	b, fsB := mk(1, "b")
	// On connect each side sends its digest and applies the other's
	// reply: a's applied log gains b's reply to a's digest, and vice
	// versa — the wire equivalent of Cluster.Heal's symmetric pulls.
	waitUntil(t, 5*time.Second, "initial digest exchange", func() bool {
		return fsA.appliedFrom("b") && fsB.appliedFrom("a")
	})

	// Kill b entirely and replace it at the same address: a must redial
	// and rerun the exchange with the replacement.
	b.Close()
	b2, fsB2 := mk(1, "b2")
	defer b2.Close()
	waitUntil(t, 10*time.Second, "reconnect digest exchange", func() bool {
		return fsB2.appliedFrom("a") && a.Stats().Reconnects > 0
	})
	_, syncsApplied := a.SyncExchanges()
	if syncsApplied == 0 {
		t.Fatal("a applied no sync replies")
	}
}

func TestTCPRejectsGarbageWithoutDying(t *testing.T) {
	sinks := make([]*tcpSink, 2)
	nets := newTCPCluster(t, 2, func(id int, o *TCPOptions, tn *TCPNetwork) {
		if tn != nil {
			sinks[id] = &tcpSink{}
			tn.AttachRouter(id, sinks[id].route)
		}
	})
	conn, err := net.Dial("tcp", nets[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("\xff\xff\xff\xff\xff this is not a frame"))
	conn.Close()
	waitUntil(t, 5*time.Second, "bad frame count", func() bool {
		return nets[0].BadFrames() > 0
	})
	// A valid hello followed by garbage is dropped at the frame level.
	conn2, err := net.Dial("tcp", nets[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn2.Write(AppendFrame(nil, Frame{Kind: KindHello, From: 1, Payload: helloPayload(RolePeer, 2, "")}))
	conn2.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	conn2.Close()
	waitUntil(t, 5*time.Second, "second bad frame", func() bool {
		return nets[0].BadFrames() > 1
	})
	// The node keeps serving its real peers.
	nets[1].Broadcast(1, []byte("still-alive"))
	waitUntil(t, 5*time.Second, "post-garbage delivery", func() bool {
		return sinks[0].has("1/0/0:still-alive")
	})
}

func TestTCPWrongClusterSizeRejected(t *testing.T) {
	nets := newTCPCluster(t, 2, func(id int, o *TCPOptions, tn *TCPNetwork) {
		if tn != nil {
			tn.AttachRouter(id, (&tcpSink{}).route)
		}
	})
	conn, err := net.Dial("tcp", nets[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A peer hello claiming a 5-process cluster must be refused.
	conn.Write(AppendFrame(nil, Frame{Kind: KindHello, From: 1, Payload: helloPayload(RolePeer, 5, "")}))
	waitUntil(t, 5*time.Second, "cross-cluster hello rejected", func() bool {
		return nets[0].BadFrames() > 0
	})
}

func TestTCPObjectMismatchRejected(t *testing.T) {
	nets := newTCPCluster(t, 2, func(id int, o *TCPOptions, tn *TCPNetwork) {
		if o != nil {
			o.ObjectName = "counter"
		}
		if tn != nil {
			tn.AttachRouter(id, (&tcpSink{}).route)
		}
	})
	// A peer speaking a different object is refused at handshake.
	conn, err := net.Dial("tcp", nets[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write(AppendFrame(nil, Frame{Kind: KindHello, From: 1, Payload: helloPayload(RolePeer, 2, "set")}))
	waitUntil(t, 5*time.Second, "mismatched peer hello rejected", func() bool {
		return nets[0].BadFrames() > 0
	})
	// A client speaking a different object gets a KindError reply.
	cc, err := net.Dial("tcp", nets[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	cc.Write(ClientHelloFor("set"))
	f, err := ReadFrame(bufio.NewReader(cc), MaxFrame)
	if err != nil || f.Kind != KindError {
		t.Fatalf("mismatched client hello: frame %+v err %v", f, err)
	}
	if !strings.Contains(string(f.Payload), "object mismatch") {
		t.Fatalf("error payload %q lacks object mismatch", f.Payload)
	}
	// A name-less (pre-registry) hello is still accepted as a peer link.
	anon, err := net.Dial("tcp", nets[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer anon.Close()
	anon.Write(AppendFrame(nil, Frame{Kind: KindHello, From: 1, Payload: helloPayload(RolePeer, 2, "")}))
	time.Sleep(50 * time.Millisecond)
	if got := nets[0].BadFrames(); got != 2 {
		t.Fatalf("bad frames after anonymous hello = %d, want 2 (peer+client mismatches only)", got)
	}
}

func TestTCPClientHandler(t *testing.T) {
	var served atomic.Uint64
	nets := newTCPCluster(t, 2, func(id int, o *TCPOptions, tn *TCPNetwork) {
		if tn != nil {
			tn.AttachRouter(id, (&tcpSink{}).route)
			tn.SetClientHandler(func(conn net.Conn, br *bufio.Reader) {
				f, err := ReadFrame(br, MaxFrame)
				if err != nil {
					return
				}
				served.Add(1)
				conn.Write(AppendFrame(nil, Frame{Kind: KindResult, From: 0, Payload: f.Payload}))
			})
		}
	})
	conn, err := net.Dial("tcp", nets[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write(ClientHello())
	conn.Write(AppendFrame(nil, Frame{Kind: KindQuery, From: -1, Payload: []byte("echo")}))
	f, err := ReadFrame(bufio.NewReader(conn), MaxFrame)
	if err != nil || string(f.Payload) != "echo" || f.Kind != KindResult {
		t.Fatalf("client round trip: frame %+v err %v", f, err)
	}
	if served.Load() != 1 {
		t.Fatalf("served = %d", served.Load())
	}
}

func TestTCPFlushDrainsQueues(t *testing.T) {
	sinks := make([]*tcpSink, 2)
	nets := newTCPCluster(t, 2, func(id int, o *TCPOptions, tn *TCPNetwork) {
		if tn != nil {
			sinks[id] = &tcpSink{}
			tn.AttachRouter(id, sinks[id].route)
		}
	})
	waitUntil(t, 5*time.Second, "link up", func() bool {
		return nets[0].PeerStats()[0].Connected
	})
	for i := 0; i < 500; i++ {
		nets[0].Broadcast(0, []byte(fmt.Sprintf("m%d", i)))
	}
	if err := nets[0].Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Flushed means written to the socket; on a live loopback receiver
	// the frames then land promptly.
	waitUntil(t, 5*time.Second, "all deliveries", func() bool {
		return sinks[1].count() >= 500
	})
	ps := nets[0].PeerStats()[0]
	if ps.QueueDepth != 0 || ps.SentFrames < 500 {
		t.Fatalf("peer stats after flush: %+v", ps)
	}
}

func TestTCPAttachWrongIDPanics(t *testing.T) {
	addrs := freeAddrs(t, 2)
	tn, err := NewTCP(TCPOptions{ID: 0, Peers: addrs, Listen: addrs[0]})
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Attach for a remote id must panic")
		}
	}()
	tn.Attach(1, func(int, []byte) {})
}
