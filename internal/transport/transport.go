// Package transport provides the wait-free asynchronous message-passing
// substrate of §VII-A: a complete, reliable network connecting n
// sequential processes, any number of which may crash, with no bound on
// message transfer delays.
//
// Two implementations are provided. SimNetwork is a deterministic,
// seeded simulator in which asynchrony is modeled by adversarially
// (pseudo-randomly) choosing which in-flight message to deliver next;
// it supports crash faults, network partitions and per-link FIFO
// control, and is what the experiment harness uses for reproducible
// runs. Its backlog is partitioned into per-worker shards (by
// destination process), so the adversary can also run as a parallel
// round-based stepper (StepParallel, see simparallel.go) whose schedule
// is a pure function of (seed, workers, batch). LiveNetwork delivers
// messages with real goroutines and per-process mailboxes and is used
// by the examples and the race-detector tests.
//
// Both networks implement the broadcast contract of Algorithm 1: a
// broadcast is delivered to the sender instantaneously (the handler is
// invoked inline, as in the paper's proof of Proposition 4, "messages
// are received instantaneously by the sender") and to every other
// process asynchronously.
//
// Both also implement ShardedNetwork: envelopes carry a shard tag and
// each (process, shard) pair attaches its own handler, which is what
// the key-sharded construction (core.ShardedReplica) runs on. FIFO
// ordering, when enabled, is enforced per link across all shards —
// each shard's messages are a subsequence of the link, so every shard
// individually observes FIFO delivery too.
package transport

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// Handler consumes a message delivered to a process. Handlers are
// invoked serially per process.
type Handler func(from int, payload []byte)

// Network is the broadcast interface replicas are written against.
type Network interface {
	// Attach registers the handler for process id. It must be called
	// before any Broadcast involving id.
	Attach(id int, h Handler)
	// Broadcast sends payload from process `from` to every process.
	// Self-delivery is synchronous; remote delivery is asynchronous.
	Broadcast(from int, payload []byte)
}

// ShardedNetwork extends Network with per-shard channels: every
// envelope carries a shard tag, and each (process, shard) pair has its
// own handler. A key-sharded replica (core.ShardedReplica) runs one
// instance of Algorithm 1 per shard; tagging at the transport layer
// means the network delivers each message directly to the owning
// shard — no demultiplexing inside the replica, and (on LiveNetwork)
// an independent mailbox and dispatcher per shard, so deliveries to
// different shards of one process proceed in parallel.
//
// Attach and Broadcast are equivalent to AttachShard and BroadcastShard
// with shard 0, so unsharded replicas compose transparently.
type ShardedNetwork interface {
	Network
	// AttachShard registers the handler for shard `shard` of process
	// id. It must be called before any BroadcastShard involving that
	// pair.
	AttachShard(id, shard int, h Handler)
	// BroadcastShard sends payload from shard `shard` of process
	// `from` to the same shard of every process. Self-delivery is
	// synchronous; remote delivery is asynchronous.
	BroadcastShard(from, shard int, payload []byte)
}

// EpochHandler consumes a delivery on a resizable sharded network: the
// envelope's shard and epoch tags are handed to the process's router,
// which dispatches to the owning shard — directly when the epoch
// matches its routing table, by re-routing the payload's key when the
// sender was on an older (or newer) table.
type EpochHandler func(from, shard, epoch int, payload []byte)

// ResizableNetwork extends ShardedNetwork with what live resharding
// needs: envelopes carry an epoch tag alongside the shard tag, each
// process can register a single router that receives every delivery
// with both tags (instead of one handler per shard), and the set of
// per-(process, shard) channels can grow at runtime. A message
// broadcast under epoch e is delivered with that tag even if receivers
// have since flipped to a later routing table — the in-flight
// old-epoch envelope reaches the receiver's router, which lands it in
// the shard that owns its key *now*.
//
// Attach and AttachRouter are mutually exclusive per process: a
// process with a router receives everything through it.
type ResizableNetwork interface {
	ShardedNetwork
	// AttachRouter registers the per-process router. It must be called
	// before any broadcast involving id.
	AttachRouter(id int, h EpochHandler)
	// BroadcastShardEpoch sends payload from shard `shard` of process
	// `from`, tagged with the sender's routing epoch, to the same shard
	// of every process. Self-delivery is synchronous; remote delivery
	// is asynchronous. BroadcastShard is equivalent with epoch 0.
	BroadcastShardEpoch(from, shard, epoch int, payload []byte)
	// EnsureShards guarantees channels exist for shard indices below
	// shards at every process (growing a live network's mailboxes; a
	// no-op where channels are implicit). It must be called before any
	// broadcast to a shard index the network was not built with.
	EnsureShards(shards int)
}

// Stats counts network traffic. Broadcasts is the number of broadcast
// invocations (the unit §VII-C's "a unique message is broadcast for
// each update" refers to); Sends counts point-to-point transmissions
// that reached a mailbox; Bytes counts payload bytes across all sends.
// Message loss is attributed: DroppedCrash counts messages lost to
// crashes (in-flight envelopes discarded when their receiver crashes,
// sends suppressed while it stays down, and CrashPartialBroadcast's
// discarded envelopes), DroppedLink counts losses injected by per-link
// faults (SetLinkFault). Partitions drop nothing — cut messages stay
// queued until Heal.
type Stats struct {
	Broadcasts   uint64
	Sends        uint64
	Delivered    uint64
	DroppedCrash uint64
	DroppedLink  uint64
	Bytes        uint64
	// DroppedFull counts envelopes rejected by a bounded per-peer send
	// queue under the drop backpressure policy (TCPNetwork); the
	// in-process networks never bound their mailboxes, so it stays zero
	// there.
	DroppedFull uint64
	// Reconnects counts peer link establishments after the first: a
	// TCPNetwork that dialed each peer exactly once has zero.
	Reconnects uint64
}

// add accumulates a delta (a worker round's per-shard counters) into s.
func (s *Stats) add(d Stats) {
	s.Broadcasts += d.Broadcasts
	s.Sends += d.Sends
	s.Delivered += d.Delivered
	s.DroppedCrash += d.DroppedCrash
	s.DroppedLink += d.DroppedLink
	s.Bytes += d.Bytes
	s.DroppedFull += d.DroppedFull
	s.Reconnects += d.Reconnects
}

// envelope is one in-flight point-to-point message. The payload slice
// is immutable and shared by every envelope of one broadcast — the
// transport never copies message bytes per recipient.
type envelope struct {
	from, to int
	shard    int // destination shard of a ShardedNetwork broadcast
	epoch    int // sender's routing epoch (ResizableNetwork broadcasts)
	// kind distinguishes wire frame types on the TCP path (data vs the
	// sync-on-connect control frames); the in-process networks carry
	// only data envelopes and leave it zero.
	kind    byte
	payload []byte
	seq     uint64 // per-(from,to) link sequence, for FIFO (zero otherwise)
	id      uint64 // tie-break id, unique per coordinator/worker stream
	// elig and lpos belong to SimNetwork's eligible index (simindex.go):
	// elig mirrors eligible(), lpos is the envelope's position in its
	// link's FIFO queue. LiveNetwork leaves both zero.
	elig bool
	lpos int
}

// SimOptions configures a SimNetwork.
type SimOptions struct {
	// N is the number of processes.
	N int
	// Seed drives the adversarial delivery order.
	Seed int64
	// FIFO restricts delivery to per-link FIFO order (the assumption
	// pipelined consistency needs). When false the adversary may
	// reorder messages arbitrarily, which Algorithm 1 tolerates. FIFO
	// allocates dense O(N²) per-link tables; leave it off for very
	// large simulations (the N-independent structures are all O(N)).
	FIFO bool
	// DuplicateProb re-enqueues a delivered message with this
	// probability, modeling at-least-once channels. Incompatible with
	// FIFO (a duplicate is inherently out of order; per-link in-order
	// duplication is available via SetLinkFault instead). Algorithm 1
	// assumes exactly-once delivery; layer NewURB (which deduplicates)
	// between a duplicating network and the replicas.
	DuplicateProb float64
	// Workers shards the adversary: the backlog is partitioned by
	// destination process (to mod workers) and each shard picks with
	// its own seeded PRNG, merged by deterministic round-robin
	// arbitration (StepParallel, simparallel.go). 0 and 1 both keep a
	// single shard driven by the root PRNG, so the sequential Step and
	// the workers=1 parallel stepper reproduce the identical schedule.
	// With Workers > 1 the sequential Step/StepN/Quiesce panic — the
	// schedule is defined per (seed, workers, batch), not per seed
	// alone — and StepParallel/QuiesceParallel must be used instead.
	Workers int
}

// LinkFault injects per-link message faults, beyond the adversary's
// reordering: each message sent on the link is lost with probability
// Drop (decided at send time, before the link sequence advances, so a
// FIFO link never waits on a message that was never sent), and each
// delivered message is re-enqueued once at the link tail with
// probability Dup — an in-order duplicate carrying a fresh sequence
// number, so FIFO delivery order is preserved while the receiver sees
// the same frame again later, exercising the dedup layers above (URB's
// seen-set, the core replica's duplicate-tolerant insert).
//
// Faults do NOT compose with stability GC: the horizon argument assumes
// every sent message is delivered exactly once on its FIFO link. Run
// fault schedules against GC-less replicas and repair the losses with
// anti-entropy (core digest sync) instead.
type LinkFault struct {
	Drop float64
	Dup  float64
}

// IndexRepairStats counts the index-maintenance work done by the
// structural fault operations (Crash, CrashPartialBroadcast, Recover,
// Partition, Heal). The counters exist so tests can pin the repair
// cost: a crash must repair only the links touching the crashed
// process (O(N) of them), never rescan and re-sort every link's FIFO
// queue (O(N²) — the historical rebuild-on-crash behavior).
type IndexRepairStats struct {
	// LinksRepaired counts non-empty per-link queue operations:
	// queues cleared (crashed receiver), filtered (partial-broadcast
	// drops) or renumbered (Recover's sequence repair).
	LinksRepaired uint64
	// Refreshes counts whole-backlog eligibility recomputes (bits +
	// Fenwick trees, O(pending) — no per-link work).
	Refreshes uint64
}

// SimNetwork is the deterministic simulator. It is not safe for
// concurrent use: the simulation harness alternates process steps and
// network steps in one goroutine, which is exactly what makes runs
// reproducible. (StepParallel internally fans a round out to worker
// goroutines, but the call itself is still one-at-a-time from the
// driving goroutine, and structural operations — Crash, Partition,
// Broadcast from the driver — happen between rounds.)
type SimNetwork struct {
	opts SimOptions
	rng  *rand.Rand
	// handlers[id][shard] is the delivery target for shard `shard` of
	// process id; the inner slices grow on AttachShard. Plain Attach
	// and Broadcast use shard 0.
	handlers [][]Handler
	// routers[id], when set, receives every delivery to id with its
	// shard and epoch tags, replacing the per-shard handlers
	// (ResizableNetwork).
	routers []EpochHandler
	crashed []bool
	group   []int // partition group per process
	// shards partitions the in-flight backlog by destination process
	// (to mod len(shards)): each shard owns its pending array, its
	// Fenwick eligible index and (during parallel rounds) its own PRNG
	// and stat deltas. With Workers <= 1 there is exactly one shard and
	// its PRNG is the root rng, reproducing the historical sequential
	// adversary bit for bit.
	shards  []simShard
	nshards int
	// inRound is true while worker picks are executing: handler
	// broadcasts are then buffered per shard (self-delivery inline) and
	// fanned out by the coordinator after the round (simparallel.go).
	inRound bool
	// linkSeq and nextSeq are dense per-link sequence tables indexed by
	// from*N+to: the last sequence number issued on the link and the
	// last one delivered (for FIFO eligibility). Allocated only in FIFO
	// mode — the unordered adversary never consults sequence numbers,
	// and the O(N²) tables would dominate memory at large N.
	linkSeq []uint64
	nextSeq []uint64
	nextID  uint64
	// linkQ holds the per-link FIFO readiness queues (simindex.go),
	// FIFO mode only. Queue entries are positions into the owning
	// shard's pending array (a link's receiver fixes its shard).
	linkQ       []linkQueue
	anyCrashed  bool
	partitioned bool
	// Link faults: faultAll applies to every link, faultMap overrides
	// individual links (including with a zero fault). hasFaults caches
	// "any fault configured" for the per-delivery check.
	faultAll  LinkFault
	faultMap  map[int]LinkFault
	hasFaults bool
	stats     Stats
	idxRepair IndexRepairStats
	// Span-timing instrumentation for parallel rounds (simparallel.go).
	timing   bool
	spanNS   int64
	serialNS int64
	rounds   int
}

// NewSim returns a deterministic network for opts.N processes.
func NewSim(opts SimOptions) *SimNetwork {
	if opts.N <= 0 {
		panic("transport: SimOptions.N must be positive")
	}
	if opts.DuplicateProb > 0 && opts.FIFO {
		panic("transport: DuplicateProb is incompatible with FIFO delivery")
	}
	if opts.DuplicateProb >= 1 {
		panic("transport: DuplicateProb must be below 1 or delivery never quiesces")
	}
	if opts.Workers < 0 {
		panic("transport: SimOptions.Workers must be non-negative")
	}
	nsh := opts.Workers
	if nsh < 1 {
		nsh = 1
	}
	n := &SimNetwork{
		opts:     opts,
		rng:      rand.New(rand.NewSource(opts.Seed)),
		handlers: make([][]Handler, opts.N),
		routers:  make([]EpochHandler, opts.N),
		crashed:  make([]bool, opts.N),
		group:    make([]int, opts.N),
		shards:   make([]simShard, nsh),
		nshards:  nsh,
	}
	for w := range n.shards {
		n.shards[w].self = w
	}
	if opts.Workers > 1 {
		// Each worker draws from its own stream, derived from the seed
		// so (seed, workers) fixes every per-shard pick sequence. The
		// root rng stays the coordinator's (drop draws, structural ops).
		for w := range n.shards {
			n.shards[w].rng = rand.New(rand.NewSource(int64(workerSeed(uint64(opts.Seed), w))))
		}
	} else {
		// One shard: the parallel stepper and the sequential Step share
		// the root PRNG, so both reproduce the historical schedule.
		n.shards[0].rng = n.rng
	}
	if opts.FIFO {
		n.linkQ = make([]linkQueue, opts.N*opts.N)
		n.linkSeq = make([]uint64, opts.N*opts.N)
		n.nextSeq = make([]uint64, opts.N*opts.N)
	}
	return n
}

// link indexes the dense per-link tables.
func (n *SimNetwork) link(from, to int) int { return from*n.opts.N + to }

// shardOf returns the shard owning deliveries to process `to`.
func (n *SimNetwork) shardOf(to int) *simShard { return &n.shards[to%n.nshards] }

// Workers reports the number of adversary shards (1 for the sequential
// configuration).
func (n *SimNetwork) Workers() int { return n.nshards }

// Attach implements Network.
func (n *SimNetwork) Attach(id int, h Handler) { n.AttachShard(id, 0, h) }

// AttachShard implements ShardedNetwork.
func (n *SimNetwork) AttachShard(id, shard int, h Handler) {
	for len(n.handlers[id]) <= shard {
		n.handlers[id] = append(n.handlers[id], nil)
	}
	n.handlers[id][shard] = h
}

// Broadcast implements Network. The sender's own copy is delivered
// inline; copies to other live processes are queued for adversarial
// delivery. A crashed sender cannot broadcast.
func (n *SimNetwork) Broadcast(from int, payload []byte) {
	n.BroadcastShardEpoch(from, 0, 0, payload)
}

// BroadcastShard implements ShardedNetwork (epoch 0).
func (n *SimNetwork) BroadcastShard(from, shard int, payload []byte) {
	n.BroadcastShardEpoch(from, shard, 0, payload)
}

// AttachRouter implements ResizableNetwork.
func (n *SimNetwork) AttachRouter(id int, h EpochHandler) { n.routers[id] = h }

// EnsureShards implements ResizableNetwork: the simulator keeps no
// per-shard structures beyond the handler tables, and a router-attached
// process needs none, so growth is implicit.
func (n *SimNetwork) EnsureShards(int) {}

// deliver hands an envelope's content to the receiving process: its
// router when one is attached, the per-shard handler otherwise.
func (n *SimNetwork) deliver(to, from, shard, epoch int, payload []byte) {
	if rt := n.routers[to]; rt != nil {
		rt(from, shard, epoch, payload)
		return
	}
	n.handlers[to][shard](from, payload)
}

// fault returns the fault configuration of a link: the per-link
// override when one is set (even a zero one), the global fault
// otherwise.
func (n *SimNetwork) fault(link int) LinkFault {
	if n.faultMap != nil {
		if f, ok := n.faultMap[link]; ok {
			return f
		}
	}
	return n.faultAll
}

// BroadcastShardEpoch implements ResizableNetwork: each queued envelope
// is tagged with the shard and the sender's routing epoch, and delivery
// invokes the receiver's router (or, without one, the handler attached
// for (to, shard)).
//
// During a parallel round (StepParallel) a handler's broadcast is
// buffered instead: the sender's own copy is still delivered inline on
// the worker that owns it — handlers may only broadcast as the process
// they are attached to — and the remote fan-out replays after the
// round, in deterministic worker order, on the coordinator.
func (n *SimNetwork) BroadcastShardEpoch(from, shard, epoch int, payload []byte) {
	if n.inRound {
		n.bufferBroadcast(from, shard, epoch, payload)
		return
	}
	if n.crashed[from] {
		return
	}
	n.stats.Broadcasts++
	// Instantaneous self-delivery (line 8 of Algorithm 1 fires for the
	// sender before update() returns).
	n.stats.Sends++
	n.stats.Delivered++
	n.stats.Bytes += uint64(len(payload))
	n.deliver(from, from, shard, epoch, payload)
	n.fanOut(from, shard, epoch, payload)
}

// fanOut queues one envelope per live remote process, drawing the
// per-link drop decisions from the coordinator rng. It is the remote
// half of a broadcast — the caller has already handled self-delivery.
func (n *SimNetwork) fanOut(from, shard, epoch int, payload []byte) {
	for to := 0; to < n.opts.N; to++ {
		if to == from {
			continue
		}
		if n.crashed[to] {
			// A crashed process has no mailbox: the message is lost, not
			// queued for its return — rejoining with a complete log is
			// the anti-entropy layer's job, not the transport's. Decided
			// before the link sequence advances, so the link stays
			// contiguous for a later Recover.
			n.stats.DroppedCrash++
			continue
		}
		link := n.link(from, to)
		if n.hasFaults {
			if f := n.fault(link); f.Drop > 0 && n.rng.Float64() < f.Drop {
				n.stats.DroppedLink++
				continue
			}
		}
		// The payload slice is shared, never copied per recipient.
		e := envelope{
			from: from, to: to, shard: shard, epoch: epoch, payload: payload,
			id: n.nextID,
		}
		if n.opts.FIFO {
			n.linkSeq[link]++
			e.seq = n.linkSeq[link]
		}
		n.enqueueShard(n.shardOf(to), e)
		n.nextID++
		n.stats.Sends++
		n.stats.Bytes += uint64(len(payload))
	}
}

// eligible reports whether an envelope may be delivered now.
func (n *SimNetwork) eligible(e *envelope) bool {
	if n.crashed[e.to] {
		return false
	}
	if n.group[e.from] != n.group[e.to] {
		return false
	}
	if n.opts.FIFO {
		return e.seq == n.nextSeq[n.link(e.from, e.to)]+1
	}
	return true
}

// Step delivers one pseudo-randomly chosen eligible in-flight message,
// returning false when nothing can be delivered (quiescence, or all
// remaining messages are blocked by partitions).
//
// The pick is uniform over the eligible envelopes in ascending
// pending-array order — the same draw, against the same ordering, as
// the historical full scan, so a seed fixes the identical delivery
// schedule — but it is answered by the eligible index (simindex.go):
// O(1) when everything is eligible, O(log pending) otherwise, never a
// walk over the backlog.
//
// Step is the sequential adversary and requires Workers <= 1; with
// more shards the schedule is defined by the round-based parallel
// stepper, so use StepParallel instead.
func (n *SimNetwork) Step() bool {
	if n.nshards > 1 {
		panic("transport: Step is sequential; use StepParallel with Workers > 1")
	}
	sh := &n.shards[0]
	if sh.eligCount == 0 {
		return false
	}
	k := n.rng.Intn(sh.eligCount)
	at := k
	if sh.eligCount != len(sh.pending) {
		at = sh.idx.selectK(k)
	}
	e := n.removeFrom(sh, at)
	if n.opts.DuplicateProb > 0 && n.rng.Float64() < n.opts.DuplicateProb {
		dup := e
		dup.id = n.nextID
		n.nextID++
		n.enqueueShard(sh, dup)
		n.stats.Sends++
		n.stats.Bytes += uint64(len(e.payload))
	}
	if n.hasFaults {
		link := n.link(e.from, e.to)
		if f := n.fault(link); f.Dup > 0 && n.rng.Float64() < f.Dup {
			// Re-enqueue at the link tail with a fresh sequence number:
			// an in-order duplicate, sound even on FIFO links.
			dup := e
			dup.id = n.nextID
			n.nextID++
			if n.opts.FIFO {
				n.linkSeq[link]++
				dup.seq = n.linkSeq[link]
			}
			n.enqueueShard(sh, dup)
			n.stats.Sends++
			n.stats.Bytes += uint64(len(e.payload))
		}
	}
	n.stats.Delivered++
	sh.picks++
	sh.fp = fpMix(sh.fp, uint64(e.from), uint64(e.to))
	n.deliver(e.to, e.from, e.shard, e.epoch, e.payload)
	return true
}

// StepN delivers up to k messages, returning how many were delivered.
func (n *SimNetwork) StepN(k int) int {
	for i := 0; i < k; i++ {
		if !n.Step() {
			return i
		}
	}
	return k
}

// Quiesce delivers until no message is deliverable. Handlers may
// broadcast during delivery (e.g. reliable-broadcast relays); those
// messages are delivered too.
func (n *SimNetwork) Quiesce() {
	for n.Step() {
	}
}

// Pending returns the number of in-flight messages (including ones
// blocked by partitions or addressed to crashed processes).
func (n *SimNetwork) Pending() int {
	total := 0
	for i := range n.shards {
		total += len(n.shards[i].pending)
	}
	return total
}

// Eligible returns the number of in-flight messages deliverable now.
func (n *SimNetwork) Eligible() int {
	total := 0
	for i := range n.shards {
		total += n.shards[i].eligCount
	}
	return total
}

// Crash halts a process: it stops receiving (its in-flight inbound
// messages are dropped, and sends to it are suppressed while it stays
// down) and its future broadcasts are suppressed. Messages it already
// sent remain in flight (they were handed to the network). A crash is
// not necessarily forever: Recover brings the process back with its
// local state intact.
//
// Only the crashed process's own links are repaired: its inbound
// envelopes live in one shard (the one owning deliveries to it), whose
// pending array is compacted in place, and only its N inbound FIFO
// queues are cleared — the other links' queues keep their order and
// merely have their stored positions re-pointed. Eligibility bits and
// trees are then refreshed, with no per-link scan.
func (n *SimNetwork) Crash(id int) {
	if n.crashed[id] {
		return
	}
	n.crashed[id] = true
	n.anyCrashed = true
	n.dropInbound(id)
	if n.opts.FIFO {
		// Everything ever sent to id is now delivered or dropped, and
		// nothing new is queued while it is down; declaring the inbound
		// links contiguous keeps them unjammed for a later Recover. The
		// inbound queues (whose envelopes were all just dropped) reset.
		for from := 0; from < n.opts.N; from++ {
			l := n.link(from, id)
			n.nextSeq[l] = n.linkSeq[l]
			if lq := &n.linkQ[l]; len(lq.q) > 0 || lq.head > 0 {
				lq.q, lq.head = lq.q[:0], 0
				n.idxRepair.LinksRepaired++
			}
		}
	}
	n.refreshEligibility()
}

// Recover brings a crashed process back: it keeps its pre-crash local
// state (the attached replica is untouched) and resumes sending and
// receiving. Messages addressed to it while it was down are gone —
// catching up on the missed suffix is the anti-entropy layer's job
// (core digest sync), not the transport's. Recovering a process that
// is not crashed is a no-op.
func (n *SimNetwork) Recover(id int) {
	if !n.crashed[id] {
		return
	}
	n.crashed[id] = false
	n.anyCrashed = false
	for _, c := range n.crashed {
		if c {
			n.anyCrashed = true
			break
		}
	}
	if n.opts.FIFO {
		n.repairLinks(id)
	}
	n.refreshEligibility()
}

// repairLinks renumbers the pending envelopes on every link touching id
// so each link's sequence numbers are contiguous again: crashes drop
// messages without delivering them (and CrashPartialBroadcast discards
// a random subset of the crashed sender's in-flight messages), leaving
// sequence holes that would jam FIFO eligibility forever after a
// Recover. Relative order per link is preserved, so FIFO semantics
// among the surviving messages are untouched — and so the links' FIFO
// queues stay valid without a rebuild.
func (n *SimNetwork) repairLinks(id int) {
	type slot struct {
		sh, idx int
		seq     uint64
	}
	perLink := map[int][]slot{}
	for s := range n.shards {
		sh := &n.shards[s]
		for i := range sh.pending {
			e := &sh.pending[i]
			if e.from != id && e.to != id {
				continue
			}
			l := n.link(e.from, e.to)
			perLink[l] = append(perLink[l], slot{sh: s, idx: i, seq: e.seq})
		}
	}
	for peer := 0; peer < n.opts.N; peer++ {
		for _, l := range []int{n.link(id, peer), n.link(peer, id)} {
			slots := perLink[l]
			if len(slots) > 0 {
				n.idxRepair.LinksRepaired++
			}
			sort.Slice(slots, func(a, b int) bool { return slots[a].seq < slots[b].seq })
			seq := n.nextSeq[l]
			for _, s := range slots {
				seq++
				n.shards[s.sh].pending[s.idx].seq = seq
			}
			n.linkSeq[l] = seq
		}
	}
}

// SetLinkFault configures fault injection on the directed link
// from → to; see LinkFault. A zero LinkFault clears the link's faults
// (overriding a global SetLinkFaultAll for that link).
func (n *SimNetwork) SetLinkFault(from, to int, f LinkFault) {
	if from < 0 || from >= n.opts.N || to < 0 || to >= n.opts.N || from == to {
		panic("transport: SetLinkFault needs two distinct process ids in range")
	}
	checkFault(f)
	if n.faultMap == nil {
		n.faultMap = make(map[int]LinkFault)
	}
	n.faultMap[n.link(from, to)] = f
	n.hasFaults = true
}

// SetLinkFaultAll applies f to every cross-process link (clearing any
// per-link overrides), without materializing per-link state.
func (n *SimNetwork) SetLinkFaultAll(f LinkFault) {
	checkFault(f)
	n.faultAll = f
	n.faultMap = nil
	n.hasFaults = f != LinkFault{}
}

func checkFault(f LinkFault) {
	if f.Drop < 0 || f.Drop >= 1 || f.Dup < 0 || f.Dup >= 1 {
		panic("transport: LinkFault probabilities must be in [0, 1)")
	}
}

// clearTail zeroes the slots past length so dropped payloads become
// collectable.
func clearTail(s []envelope, length int) {
	for i := length; i < len(s); i++ {
		s[i] = envelope{}
	}
}

// CrashPartialBroadcast models the adversarial crash of §VII's fault
// model at its harshest: the process halts mid-broadcast, so each of
// its in-flight messages independently survives with probability
// keepProb. With best-effort broadcast this can leave correct processes
// disagreeing about the crashed process's updates; the URB wrapper
// exists to repair exactly this.
//
// Survival draws come from the coordinator rng in shard-major,
// ascending-position order (the historical global-array order when
// there is one shard).
func (n *SimNetwork) CrashPartialBroadcast(id int, keepProb float64) {
	already := n.crashed[id]
	for s := range n.shards {
		n.dropOutboundPartial(&n.shards[s], id, keepProb)
	}
	if already {
		// Crash below would no-op; the compaction still moved envelopes.
		n.refreshEligibility()
		return
	}
	n.Crash(id) // refreshes eligibility
}

// Crashed reports whether id has crashed.
func (n *SimNetwork) Crashed(id int) bool { return n.crashed[id] }

// Reachable reports whether messages currently flow from a to b: both
// alive, and not separated by a partition. The anti-entropy layer uses
// it to keep digest exchanges honest — a recovering replica pulls only
// from peers it could actually talk to, and cross-cut repair waits for
// Heal.
func (n *SimNetwork) Reachable(a, b int) bool {
	return !n.crashed[a] && !n.crashed[b] && n.group[a] == n.group[b]
}

// Partition splits the processes into groups; messages only flow within
// a group. Messages already in flight across the cut stay queued until
// Heal. Unmentioned processes form group 0. Partitions edit no queues
// and move no envelopes: only the eligibility bits and trees refresh.
func (n *SimNetwork) Partition(groups ...[]int) {
	for i := range n.group {
		n.group[i] = 0
	}
	n.partitioned = false
	for g, members := range groups {
		for _, id := range members {
			n.group[id] = g + 1
			n.partitioned = true
		}
	}
	n.refreshEligibility()
}

// Heal removes all partitions.
func (n *SimNetwork) Heal() {
	for i := range n.group {
		n.group[i] = 0
	}
	n.partitioned = false
	n.refreshEligibility()
}

// Stats returns a copy of the traffic counters.
func (n *SimNetwork) Stats() Stats { return n.stats }

// IndexRepair returns the cumulative index-repair work counters.
func (n *SimNetwork) IndexRepair() IndexRepairStats { return n.idxRepair }

var (
	_ Network          = (*SimNetwork)(nil)
	_ ShardedNetwork   = (*SimNetwork)(nil)
	_ ResizableNetwork = (*SimNetwork)(nil)
)

// LiveNetwork delivers messages with one dispatcher goroutine and an
// unbounded mailbox per (process, shard) pair, so Broadcast never
// blocks — the wait-freedom requirement. Unsharded use (NewLive) has a
// single shard per process; NewLiveSharded gives every shard its own
// mailbox and dispatcher, so deliveries to different shards of the
// same process run in parallel. It is safe for concurrent use.
type LiveNetwork struct {
	n      int
	shards int
	// nodes holds the mailbox + dispatcher table, nodes[id][shard], one
	// per shard of each process. The table is copy-on-write: EnsureShards
	// builds a fresh table and swaps the pointer (writers coordinate
	// under mu), so the broadcast hot path loads and indexes it without
	// a lock.
	nodes atomic.Pointer[[][]*liveNode]
	// routers[id], when set, receives every delivery to id with its
	// shard and epoch tags (ResizableNetwork); nodes added later by
	// EnsureShards inherit it.
	routers []EpochHandler
	// crashedProc[id] records a Crash(id) at the process level (guarded
	// by mu) so nodes added later by EnsureShards are born crashed — a
	// crashed process must not come back to life on new shard indices.
	crashedProc []bool
	mu          sync.Mutex
	stats       Stats
	// droppedCrash counts messages the dispatchers discarded because
	// their process was crashed; atomic because dispatchers bump it
	// outside mu.
	droppedCrash atomic.Uint64
	closed       bool
}

type liveNode struct {
	// mb is the shared batch-drain mailbox (mailbox.go) — the same
	// helper the TCP transport's per-peer senders drain; here it is
	// unbounded, which is the wait-freedom requirement.
	mb *mailbox
	// hmu guards handler/route registration against the dispatcher's
	// per-batch load.
	hmu     sync.Mutex
	handler Handler
	// route, when set, replaces handler: deliveries are handed to the
	// per-process router with their shard and epoch tags.
	route EpochHandler
	// crashed is atomic, not mutex-guarded: the dispatcher re-checks it
	// per message while working through a swapped-out batch, so a crash
	// takes effect mid-backlog without reintroducing a lock round-trip
	// per envelope.
	crashed atomic.Bool
	// drops points at the owning network's crash-drop counter; the
	// dispatcher bumps it for every message it discards while crashed.
	drops *atomic.Uint64
	done  chan struct{}
}

// NewLive returns a live network for n processes with a single shard
// per process. Close must be called to stop the dispatcher goroutines.
func NewLive(n int) *LiveNetwork { return NewLiveSharded(n, 1) }

// NewLiveSharded returns a live network for n processes with the given
// number of shards per process, one mailbox and dispatcher goroutine
// each. Close must be called to stop the dispatchers.
func NewLiveSharded(n, shards int) *LiveNetwork {
	if shards <= 0 {
		panic("transport: NewLiveSharded needs at least one shard")
	}
	ln := &LiveNetwork{n: n, shards: shards, routers: make([]EpochHandler, n), crashedProc: make([]bool, n)}
	nodes := make([][]*liveNode, n)
	for i := range nodes {
		nodes[i] = make([]*liveNode, shards)
		for s := range nodes[i] {
			nodes[i][s] = newLiveNode(&ln.droppedCrash)
		}
	}
	ln.nodes.Store(&nodes)
	return ln
}

func newLiveNode(drops *atomic.Uint64) *liveNode {
	node := &liveNode{mb: newMailbox(0), drops: drops, done: make(chan struct{})}
	go node.run()
	return node
}

// snapshot captures the current node table; a captured table is
// immutable (EnsureShards swaps in a fresh one, never mutates one).
func (ln *LiveNetwork) snapshot() [][]*liveNode { return *ln.nodes.Load() }

// EnsureShards implements ResizableNetwork: it grows every process's
// mailbox row to the given shard count, spawning a dispatcher per new
// (process, shard) channel. Existing nodes — and any envelopes queued
// in them — are carried over untouched. Shrinking is implicit: a
// routing epoch with fewer shards simply stops broadcasting to the
// higher indices, whose dispatchers idle until Close.
func (ln *LiveNetwork) EnsureShards(shards int) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	if shards <= ln.shards || ln.closed {
		return
	}
	old := *ln.nodes.Load()
	nodes := make([][]*liveNode, ln.n)
	for i := range nodes {
		row := make([]*liveNode, shards)
		copy(row, old[i])
		for s := ln.shards; s < shards; s++ {
			node := newLiveNode(&ln.droppedCrash)
			if rt := ln.routers[i]; rt != nil {
				node.hmu.Lock()
				node.route = rt
				node.hmu.Unlock()
			}
			if ln.crashedProc[i] {
				node.crashed.Store(true)
			}
			row[s] = node
		}
		nodes[i] = row
	}
	ln.nodes.Store(&nodes)
	ln.shards = shards
}

// AttachRouter implements ResizableNetwork: every current and future
// channel of process id delivers through h.
func (ln *LiveNetwork) AttachRouter(id int, h EpochHandler) {
	ln.mu.Lock()
	ln.routers[id] = h
	nodes := *ln.nodes.Load()
	ln.mu.Unlock()
	for _, nd := range nodes[id] {
		nd.hmu.Lock()
		nd.route = h
		nd.hmu.Unlock()
	}
}

func (nd *liveNode) run() {
	defer close(nd.done)
	// The mailbox and the dispatcher's batch buffer ping-pong: one lock
	// round-trip swaps the whole queue out, instead of popping one
	// envelope per acquisition — under heavy fan-in the dispatcher takes
	// the lock once per backlog, not once per message.
	var batch []envelope
	for {
		var ok bool
		batch, ok = nd.mb.swapWait(batch)
		if !ok {
			return
		}
		nd.hmu.Lock()
		h, rt := nd.handler, nd.route
		nd.hmu.Unlock()
		if h != nil || rt != nil {
			for i := range batch {
				if nd.crashed.Load() {
					nd.drops.Add(uint64(len(batch) - i))
					break // a crash mid-batch drops the rest
				}
				if rt != nil {
					rt(batch[i].from, batch[i].shard, batch[i].epoch, batch[i].payload)
				} else {
					h(batch[i].from, batch[i].payload)
				}
			}
		}
		// Zero the handled slots so the shared payloads become
		// collectable while the buffer waits for reuse.
		clearTail(batch, 0)
		nd.mb.idle()
	}
}

// Attach implements Network.
func (ln *LiveNetwork) Attach(id int, h Handler) { ln.AttachShard(id, 0, h) }

// AttachShard implements ShardedNetwork.
func (ln *LiveNetwork) AttachShard(id, shard int, h Handler) {
	nd := ln.snapshot()[id][shard]
	nd.hmu.Lock()
	nd.handler = h
	nd.hmu.Unlock()
}

// Broadcast implements Network. Self-delivery is synchronous (invoked
// on the caller's goroutine); remote deliveries are enqueued.
func (ln *LiveNetwork) Broadcast(from int, payload []byte) {
	ln.BroadcastShardEpoch(from, 0, 0, payload)
}

// BroadcastShard implements ShardedNetwork (epoch 0).
func (ln *LiveNetwork) BroadcastShard(from, shard int, payload []byte) {
	ln.BroadcastShardEpoch(from, shard, 0, payload)
}

// BroadcastShardEpoch implements ResizableNetwork: the message goes to
// the mailbox of shard `shard` at every other process, tagged with the
// sender's routing epoch.
func (ln *LiveNetwork) BroadcastShardEpoch(from, shard, epoch int, payload []byte) {
	nodes := ln.snapshot()
	self := nodes[from][shard]
	self.hmu.Lock()
	h, rt := self.handler, self.route
	self.hmu.Unlock()
	if self.crashed.Load() {
		return
	}
	// One batched stats update per broadcast, not one lock round-trip
	// per recipient.
	ln.mu.Lock()
	ln.stats.Broadcasts++
	ln.stats.Sends += uint64(ln.n)
	ln.stats.Delivered += uint64(ln.n) // self + n-1 mailboxes
	ln.stats.Bytes += uint64(len(payload) * ln.n)
	ln.mu.Unlock()
	if rt != nil {
		rt(from, shard, epoch, payload)
	} else if h != nil {
		h(from, payload)
	}
	for to := 0; to < ln.n; to++ {
		if to == from {
			continue
		}
		// The payload slice is shared with every other mailbox; the
		// mailboxes are unbounded, so push never blocks (and is a
		// counted no-op after Close).
		nodes[to][shard].mb.push(envelope{from: from, to: to, shard: shard, epoch: epoch, payload: payload}, false)
	}
}

// Crash halts a process: every shard stops handling queued and future
// messages (including a batch the dispatcher already swapped out of the
// mailbox) and the process's broadcasts are suppressed — including on
// shard channels a later EnsureShards adds.
func (ln *LiveNetwork) Crash(id int) {
	ln.mu.Lock()
	ln.crashedProc[id] = true
	nodes := *ln.nodes.Load()
	ln.mu.Unlock()
	for _, nd := range nodes[id] {
		nd.crashed.Store(true)
	}
}

// Recover brings a crashed process back on every shard channel,
// including ones EnsureShards added while it was down. Messages the
// dispatchers dropped during the crash are lost; anything still queued
// at recovery time delivers normally (indistinguishable from in-flight
// delay — the live transport's crash drop is inherently racy). State
// repair is the anti-entropy layer's job, not the transport's.
func (ln *LiveNetwork) Recover(id int) {
	ln.mu.Lock()
	ln.crashedProc[id] = false
	nodes := *ln.nodes.Load()
	ln.mu.Unlock()
	for _, nd := range nodes[id] {
		nd.crashed.Store(false)
	}
}

// Close stops all dispatchers after draining their queues and waits for
// them to exit.
func (ln *LiveNetwork) Close() {
	ln.mu.Lock()
	if ln.closed {
		ln.mu.Unlock()
		return
	}
	ln.closed = true
	ln.mu.Unlock()
	nodes := ln.snapshot()
	for _, row := range nodes {
		for _, nd := range row {
			nd.mb.close()
		}
	}
	for _, row := range nodes {
		for _, nd := range row {
			<-nd.done
		}
	}
}

// Drain blocks until every mailbox is empty and every dispatcher is
// idle, repeating until one full pass observes the whole network
// quiescent (handlers may re-broadcast, e.g. URB relays, refilling
// mailboxes checked earlier in the pass). With no concurrent
// broadcasters, Drain returning means every sent message has been
// fully handled.
func (ln *LiveNetwork) Drain() {
	for {
		stable := true
		for _, row := range ln.snapshot() {
			for _, nd := range row {
				if nd.mb.waitEmpty() {
					stable = false
				}
			}
		}
		if stable {
			return
		}
	}
}

// Stats returns a copy of the traffic counters.
func (ln *LiveNetwork) Stats() Stats {
	ln.mu.Lock()
	s := ln.stats
	ln.mu.Unlock()
	s.DroppedCrash += ln.droppedCrash.Load()
	return s
}

var (
	_ Network          = (*LiveNetwork)(nil)
	_ ShardedNetwork   = (*LiveNetwork)(nil)
	_ ResizableNetwork = (*LiveNetwork)(nil)
)

// String renders traffic counters for experiment tables.
func (s Stats) String() string {
	return fmt.Sprintf("broadcasts=%d sends=%d delivered=%d dropped_crash=%d dropped_link=%d dropped_full=%d reconnects=%d bytes=%d",
		s.Broadcasts, s.Sends, s.Delivered, s.DroppedCrash, s.DroppedLink, s.DroppedFull, s.Reconnects, s.Bytes)
}
