package transport

import (
	"fmt"
	"math/rand"
	"testing"
)

// refStep is the pre-index Step, kept verbatim as the reference the
// eligible index must reproduce: scan every pending envelope, collect
// the eligible ones in array order, pick uniformly, swap-remove. It
// drives a SimNetwork without maintaining the index (which the
// determinism tests never consult on the reference instance).
func refStep(n *SimNetwork) bool {
	sh := &n.shards[0] // the reference is sequential: a single shard
	var candidates []int
	for i := range sh.pending {
		if n.eligible(&sh.pending[i]) {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return false
	}
	at := candidates[n.rng.Intn(len(candidates))]
	e := sh.pending[at]
	last := len(sh.pending) - 1
	sh.pending[at] = sh.pending[last]
	sh.pending[last] = envelope{}
	sh.pending = sh.pending[:last]
	if n.opts.FIFO {
		n.nextSeq[n.link(e.from, e.to)] = e.seq
	}
	if n.opts.DuplicateProb > 0 && n.rng.Float64() < n.opts.DuplicateProb {
		dup := e
		dup.id = n.nextID
		n.nextID++
		sh.pending = append(sh.pending, dup)
		n.stats.Sends++
		n.stats.Bytes += uint64(len(e.payload))
	}
	n.stats.Delivered++
	n.handlers[e.to][e.shard](e.from, e.payload)
	return true
}

// traceNet attaches recording handlers to every process of a sim
// network and returns the global delivery trace.
func traceNet(net *SimNetwork, n int) *[]string {
	trace := &[]string{}
	for i := 0; i < n; i++ {
		to := i
		net.Attach(i, func(from int, payload []byte) {
			*trace = append(*trace, fmt.Sprintf("%d->%d:%s", from, to, payload))
		})
	}
	return trace
}

// scheduleOp is one step of a determinism scenario, applied to the
// indexed network and the scan-reference network in lockstep.
type scheduleOp struct {
	apply func(net *SimNetwork, step func(*SimNetwork) bool)
}

func bcast(from int, payload string) scheduleOp {
	return scheduleOp{func(net *SimNetwork, _ func(*SimNetwork) bool) {
		net.Broadcast(from, []byte(payload))
	}}
}

func steps(k int) scheduleOp {
	return scheduleOp{func(net *SimNetwork, step func(*SimNetwork) bool) {
		for i := 0; i < k; i++ {
			step(net)
		}
	}}
}

func structural(f func(*SimNetwork)) scheduleOp {
	return scheduleOp{func(net *SimNetwork, _ func(*SimNetwork) bool) { f(net) }}
}

// runSchedule drives a fresh network through the scenario with the
// given stepper and returns the delivery trace.
func runSchedule(opts SimOptions, ops []scheduleOp, step func(*SimNetwork) bool) []string {
	net := NewSim(opts)
	trace := traceNet(net, opts.N)
	for _, op := range ops {
		op.apply(net, step)
	}
	for step(net) {
	}
	return *trace
}

// determinismScenarios covers every eligibility regime: unrestricted
// (all pending eligible), FIFO link readiness, partitions with heal,
// crashes (clean and mid-broadcast), and duplicating channels.
func determinismScenarios() map[string]struct {
	opts SimOptions
	ops  []scheduleOp
} {
	burst := func(n, count int) []scheduleOp {
		ops := make([]scheduleOp, 0, count)
		for k := 0; k < count; k++ {
			ops = append(ops, bcast(k%n, fmt.Sprintf("m%d", k)))
			if k%5 == 4 {
				ops = append(ops, steps(3))
			}
		}
		return ops
	}
	return map[string]struct {
		opts SimOptions
		ops  []scheduleOp
	}{
		"unrestricted": {
			opts: SimOptions{N: 5, Seed: 101},
			ops:  burst(5, 40),
		},
		"fifo": {
			opts: SimOptions{N: 4, Seed: 102, FIFO: true},
			ops:  burst(4, 40),
		},
		"partition-heal": {
			opts: SimOptions{N: 4, Seed: 103, FIFO: true},
			ops: append(append([]scheduleOp{
				structural(func(n *SimNetwork) { n.Partition([]int{0, 1}, []int{2, 3}) }),
			}, burst(4, 30)...),
				structural((*SimNetwork).Heal),
				bcast(0, "after-heal"),
			),
		},
		"crash": {
			opts: SimOptions{N: 5, Seed: 104},
			ops: append(burst(5, 20),
				structural(func(n *SimNetwork) { n.Crash(3) }),
				bcast(0, "after-crash"),
				steps(2),
				structural(func(n *SimNetwork) { n.CrashPartialBroadcast(1, 0.5) }),
				bcast(2, "after-partial"),
			),
		},
		"duplicates": {
			opts: SimOptions{N: 3, Seed: 105, DuplicateProb: 0.3},
			ops:  burst(3, 30),
		},
	}
}

// TestSimStepMatchesScanReference: for a fixed seed, the indexed Step
// must produce the delivery schedule of the historical O(pending)
// scan, envelope for envelope, across every eligibility regime. This
// is the "schedule unchanged before and after the index" gate: the
// recorded experiments pin seeds, so the index must not perturb them.
func TestSimStepMatchesScanReference(t *testing.T) {
	for name, sc := range determinismScenarios() {
		t.Run(name, func(t *testing.T) {
			got := runSchedule(sc.opts, sc.ops, (*SimNetwork).Step)
			want := runSchedule(sc.opts, sc.ops, refStep)
			if len(got) != len(want) {
				t.Fatalf("indexed Step delivered %d messages, scan reference %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("schedules diverge at delivery %d: indexed %q, reference %q", i, got[i], want[i])
				}
			}
		})
	}
}

// TestSimStepSameSeedSameSchedule: two fresh networks with the same
// seed must produce identical schedules through the indexed Step
// (reproducibility, independent of the reference).
func TestSimStepSameSeedSameSchedule(t *testing.T) {
	for name, sc := range determinismScenarios() {
		t.Run(name, func(t *testing.T) {
			a := runSchedule(sc.opts, sc.ops, (*SimNetwork).Step)
			b := runSchedule(sc.opts, sc.ops, (*SimNetwork).Step)
			if len(a) != len(b) {
				t.Fatalf("runs delivered %d vs %d messages", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("same seed diverged at delivery %d: %q vs %q", i, a[i], b[i])
				}
			}
		})
	}
}

// checkIndex asserts every index invariant against the pending array:
// eligibility bits mirror eligible(), the count matches, the Fenwick
// tree selects exactly the eligible positions in ascending order, and
// in FIFO mode each link queue holds exactly that link's envelopes in
// sequence order with back-pointers intact.
func checkIndex(t *testing.T, n *SimNetwork) {
	t.Helper()
	for s := range n.shards {
		sh := &n.shards[s]
		count := 0
		var want []int
		for i := range sh.pending {
			e := &sh.pending[i]
			if e.to%n.nshards != s {
				t.Fatalf("shard %d holds envelope to %d (owner %d)", s, e.to, e.to%n.nshards)
			}
			if e.elig != n.eligible(e) {
				t.Fatalf("shard %d pending[%d] elig bit %v, eligible() %v", s, i, e.elig, n.eligible(e))
			}
			if e.elig {
				count++
				want = append(want, i)
			}
		}
		if count != sh.eligCount {
			t.Fatalf("shard %d eligCount %d, actual eligible %d", s, sh.eligCount, count)
		}
		if !n.uniform() {
			for k, pos := range want {
				if got := sh.idx.selectK(k); got != pos {
					t.Fatalf("shard %d selectK(%d) = %d, want %d", s, k, got, pos)
				}
			}
		}
	}
	if !n.opts.FIFO {
		return
	}
	// seen[shard] maps pending positions covered by the link queues.
	seen := make([]map[int]bool, n.nshards)
	for s := range seen {
		seen[s] = make(map[int]bool)
	}
	for l := range n.linkQ {
		lq := &n.linkQ[l]
		s := (l % n.opts.N) % n.nshards // link (from,to): shard of `to`
		sh := &n.shards[s]
		var prev uint64
		for pos := lq.head; pos < len(lq.q); pos++ {
			p := lq.q[pos]
			if p < 0 || p >= len(sh.pending) {
				t.Fatalf("link %d queue points at %d, shard %d pending has %d", l, p, s, len(sh.pending))
			}
			e := &sh.pending[p]
			if n.link(e.from, e.to) != l {
				t.Fatalf("link %d queue holds envelope of link %d", l, n.link(e.from, e.to))
			}
			if e.lpos != pos {
				t.Fatalf("shard %d pending[%d].lpos = %d, queue position %d", s, p, e.lpos, pos)
			}
			if e.seq <= prev && pos > lq.head {
				t.Fatalf("link %d queue out of seq order: %d after %d", l, e.seq, prev)
			}
			prev = e.seq
			if seen[s][p] {
				t.Fatalf("shard %d pending[%d] appears in two link queue slots", s, p)
			}
			seen[s][p] = true
		}
	}
	for s := range n.shards {
		if len(seen[s]) != len(n.shards[s].pending) {
			t.Fatalf("shard %d link queues hold %d envelopes, pending %d", s, len(seen[s]), len(n.shards[s].pending))
		}
	}
}

// TestSimIndexConsistencyUnderChurn: the index must stay consistent
// with pending through interleaved broadcasts, deliveries (swap-
// removes), crashes, partial-broadcast crashes (the Drop path), and
// partition changes.
func TestSimIndexConsistencyUnderChurn(t *testing.T) {
	for _, fifo := range []bool{false, true} {
		t.Run(fmt.Sprintf("fifo=%v", fifo), func(t *testing.T) {
			const n = 5
			net := NewSim(SimOptions{N: n, Seed: 9, FIFO: fifo})
			for i := 0; i < n; i++ {
				net.Attach(i, func(int, []byte) {})
			}
			rng := rand.New(rand.NewSource(10))
			crashed := 0
			for round := 0; round < 400; round++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					from := rng.Intn(n)
					if !net.Crashed(from) {
						net.Broadcast(from, []byte(fmt.Sprintf("r%d", round)))
					}
				case 4, 5, 6:
					net.Step()
				case 7:
					net.Partition([]int{0, 1}, []int{2, 3, 4})
				case 8:
					net.Heal()
				case 9:
					// Keep a majority alive so traffic continues.
					if crashed < 2 {
						id := rng.Intn(n)
						if !net.Crashed(id) {
							crashed++
							if rng.Intn(2) == 0 {
								net.Crash(id)
							} else {
								net.CrashPartialBroadcast(id, 0.5)
							}
						}
					}
				}
				checkIndex(t, net)
			}
			net.Quiesce()
			checkIndex(t, net)
		})
	}
}

// TestSimCrashDropKeepsBucketsConsistent: the Crash and
// CrashPartialBroadcast paths rewrite pending wholesale; the rebuilt
// index must agree with the surviving envelopes, and delivery must
// continue correctly afterwards.
func TestSimCrashDropKeepsBucketsConsistent(t *testing.T) {
	const n = 4
	net := NewSim(SimOptions{N: n, Seed: 31, FIFO: true})
	trace := traceNet(net, n)
	for k := 0; k < 24; k++ {
		net.Broadcast(k%n, []byte(fmt.Sprintf("m%d", k)))
	}
	checkIndex(t, net)
	net.CrashPartialBroadcast(2, 0.4)
	checkIndex(t, net)
	net.Crash(1)
	checkIndex(t, net)
	afterCrash := len(*trace)
	net.Quiesce()
	checkIndex(t, net)
	// No delivery may target a crashed process after its crash.
	for _, d := range (*trace)[afterCrash:] {
		var from, to int
		var rest string
		if _, err := fmt.Sscanf(d, "%d->%d:%s", &from, &to, &rest); err != nil {
			t.Fatalf("malformed trace entry %q: %v", d, err)
		}
		if to == 1 || to == 2 {
			t.Fatalf("delivery %q to crashed process after crash", d)
		}
	}
	// Quiescence means the eligible set is empty even though blocked
	// envelopes (dropped-seq FIFO suffixes) may remain pending.
	if net.Eligible() != 0 {
		t.Fatalf("quiesced network still reports %d eligible of %d pending", net.Eligible(), net.Pending())
	}
}
