package transport

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestSimRecoverResumesDelivery: messages sent while a process is down
// are dropped (and counted as crash drops), messages sent after
// recovery arrive.
func TestSimRecoverResumesDelivery(t *testing.T) {
	net := NewSim(SimOptions{N: 2, Seed: 1})
	logs := collect(net, 2)
	net.Crash(1)
	net.Broadcast(0, []byte("lost"))
	net.Quiesce()
	net.Recover(1)
	net.Broadcast(0, []byte("found"))
	net.Quiesce()
	if got := fmt.Sprint(*logs[1]); got != "[0:found]" {
		t.Fatalf("recovered process delivered %s, want only the post-recovery message", got)
	}
	st := net.Stats()
	if st.DroppedCrash != 1 || st.DroppedLink != 0 {
		t.Fatalf("stats attribute the loss wrong: %+v", st)
	}
}

// TestSimRecoverUnderFIFO: a crash punches a hole in every inbound
// link's sequence; Recover must re-seat the FIFO cursors so
// post-recovery traffic is deliverable and still in order.
func TestSimRecoverUnderFIFO(t *testing.T) {
	net := NewSim(SimOptions{N: 3, Seed: 2, FIFO: true})
	logs := collect(net, 3)
	net.Broadcast(0, []byte("a"))
	net.Quiesce()
	net.Crash(2)
	for i := 0; i < 5; i++ {
		net.Broadcast(0, []byte("hole"))
	}
	net.Quiesce()
	net.Recover(2)
	net.Broadcast(0, []byte("b"))
	net.Broadcast(0, []byte("c"))
	net.Quiesce()
	if net.Pending() != 0 {
		t.Fatalf("FIFO link jammed after recovery: %d messages stuck", net.Pending())
	}
	if got := fmt.Sprint(*logs[2]); got != "[0:a 0:b 0:c]" {
		t.Fatalf("recovered process delivered %s, want [0:a 0:b 0:c] in order", got)
	}
}

// TestLinkFaultDrop: a lossy directed link drops some messages (counted
// as link drops), while the reverse direction and other links are
// untouched.
func TestLinkFaultDrop(t *testing.T) {
	net := NewSim(SimOptions{N: 2, Seed: 3})
	logs := collect(net, 2)
	net.SetLinkFault(0, 1, LinkFault{Drop: 0.5})
	const sends = 200
	for i := 0; i < sends; i++ {
		net.Broadcast(0, []byte("x"))
		net.Broadcast(1, []byte("y"))
	}
	net.Quiesce()
	st := net.Stats()
	if st.DroppedLink == 0 {
		t.Fatal("Drop=0.5 over 200 sends dropped nothing")
	}
	if got := len(*logs[0]); got != 2*sends {
		t.Fatalf("reverse direction lost messages: p0 delivered %d, want %d", got, 2*sends)
	}
	// p1: its own self-deliveries plus whatever survived the faulty link.
	if got := len(*logs[1]); got != 2*sends-int(st.DroppedLink) {
		t.Fatalf("p1 delivered %d, want %d sent minus %d dropped", got, 2*sends, st.DroppedLink)
	}
}

// TestLinkFaultDup duplicates in order: on a FIFO link the duplicate is
// re-sequenced at the tail, so delivery stays legal and the receiver
// sees strictly more arrivals than broadcasts.
func TestLinkFaultDup(t *testing.T) {
	net := NewSim(SimOptions{N: 2, Seed: 4, FIFO: true})
	logs := collect(net, 2)
	net.SetLinkFault(0, 1, LinkFault{Dup: 0.5})
	const sends = 200
	for i := 0; i < sends; i++ {
		net.Broadcast(0, []byte(fmt.Sprint(i)))
	}
	net.Quiesce()
	if net.Pending() != 0 {
		t.Fatalf("FIFO link jammed by duplication: %d stuck", net.Pending())
	}
	if got := len(*logs[1]); got <= sends {
		t.Fatalf("Dup=0.5 delivered %d arrivals over %d sends — no duplicates", got, sends)
	}
}

// TestSetLinkFaultValidates rejects out-of-range ids, self links and
// probabilities outside [0, 1).
func TestSetLinkFaultValidates(t *testing.T) {
	net := NewSim(SimOptions{N: 2, Seed: 1})
	for _, bad := range []func(){
		func() { net.SetLinkFault(0, 2, LinkFault{Drop: 0.1}) },
		func() { net.SetLinkFault(-1, 1, LinkFault{Drop: 0.1}) },
		func() { net.SetLinkFault(0, 0, LinkFault{Drop: 0.1}) },
		func() { net.SetLinkFault(0, 1, LinkFault{Drop: 1.0}) },
		func() { net.SetLinkFault(0, 1, LinkFault{Dup: -0.1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected a panic for an invalid link fault")
				}
			}()
			bad()
		}()
	}
}

// TestURBDuplicateFramesNeverDoubleApply is the at-least-once property
// test: under heavy transport-level duplication, every application
// broadcast is handed up exactly once per process.
func TestURBDuplicateFramesNeverDoubleApply(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		base := NewSim(SimOptions{N: 3, Seed: seed, DuplicateProb: 0.8})
		urb := NewURB(base, 3)
		logs := collect(urb, 3)
		rng := rand.New(rand.NewSource(seed))
		const msgs = 40
		for i := 0; i < msgs; i++ {
			urb.Broadcast(rng.Intn(3), []byte(fmt.Sprint(i)))
		}
		base.Quiesce()
		for p := 0; p < 3; p++ {
			seen := map[string]int{}
			for _, m := range *logs[p] {
				seen[m]++
			}
			if len(seen) != msgs {
				t.Fatalf("seed %d: p%d delivered %d distinct of %d broadcasts", seed, p, len(seen), msgs)
			}
			for m, k := range seen {
				if k != 1 {
					t.Fatalf("seed %d: p%d applied %s %d times", seed, p, m, k)
				}
			}
		}
	}
}

// TestURBDedupStateBounded is the GC property test: however many frames
// and duplicates were in flight, once the network settles the
// out-of-order dedup overflow drains to zero — the entire dedup state
// collapses back to one watermark integer per (process, origin) pair.
func TestURBDedupStateBounded(t *testing.T) {
	maxPeak := 0
	for seed := int64(0); seed < 20; seed++ {
		base := NewSim(SimOptions{N: 4, Seed: seed, DuplicateProb: 0.6})
		urb := NewURB(base, 4)
		collect(urb, 4)
		rng := rand.New(rand.NewSource(seed))
		peak := 0
		for i := 0; i < 120; i++ {
			urb.Broadcast(rng.Intn(4), []byte(fmt.Sprint(i)))
			// Partial delivery keeps a churn of out-of-order arrivals.
			base.StepN(rng.Intn(4))
			if l := urb.DedupLoad(); l > peak {
				peak = l
			}
		}
		base.Quiesce()
		if got := urb.DedupLoad(); got != 0 {
			t.Fatalf("seed %d: settled network still parks %d dedup entries (peak %d)", seed, got, peak)
		}
		if peak > maxPeak {
			maxPeak = peak
		}
	}
	if maxPeak == 0 {
		t.Fatal("no schedule ever parked an out-of-order entry — the property is vacuous")
	}
}
