package transport

import (
	"fmt"
	"math/rand"
	"testing"
)

// parStepper returns a stepper driving the network through parallel
// rounds of the given batch, with the scheduleOp signature.
func parStepper(batch int) func(*SimNetwork) bool {
	return func(n *SimNetwork) bool { return n.StepParallel(batch) > 0 }
}

// TestSimParallelMatchesSequential is the retained-reference gate for
// the parallel adversary: with workers=1 the round-based stepper must
// reproduce the sequential Step's delivery schedule bit for bit — same
// rng stream, same picks, same envelopes — across every eligibility
// regime (unrestricted, FIFO, partitions, crashes, duplicating
// channels). A round of batch 1 is one sequential Step, so the whole
// interleaving of broadcasts, structural faults and steps matches.
func TestSimParallelMatchesSequential(t *testing.T) {
	for name, sc := range determinismScenarios() {
		t.Run(name, func(t *testing.T) {
			want := runSchedule(sc.opts, sc.ops, (*SimNetwork).Step)
			opts := sc.opts
			opts.Workers = 1
			got := runSchedule(opts, sc.ops, parStepper(1))
			if len(got) != len(want) {
				t.Fatalf("parallel workers=1 delivered %d messages, sequential %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("schedules diverge at delivery %d: parallel %q, sequential %q", i, got[i], want[i])
				}
			}
		})
	}
}

// TestSimParallelBatchedDrainMatchesSequential: when handlers don't
// broadcast during delivery, a workers=1 drain in rounds of any batch
// size performs the exact pick sequence of the sequential Quiesce —
// batching only groups the picks, it never reorders the rng stream.
func TestSimParallelBatchedDrainMatchesSequential(t *testing.T) {
	load := func(net *SimNetwork) {
		for k := 0; k < 40; k++ {
			net.Broadcast(k%5, []byte(fmt.Sprintf("m%d", k)))
		}
	}
	for _, opts := range []SimOptions{
		{N: 5, Seed: 41},
		{N: 5, Seed: 42, FIFO: true},
		{N: 5, Seed: 43, DuplicateProb: 0.25},
	} {
		seqNet := NewSim(opts)
		want := traceNet(seqNet, opts.N)
		load(seqNet)
		seqNet.Quiesce()

		popts := opts
		popts.Workers = 1
		parNet := NewSim(popts)
		got := traceNet(parNet, opts.N)
		load(parNet)
		parNet.QuiesceParallel(7)

		if len(*got) != len(*want) {
			t.Fatalf("seed %d: batched drain delivered %d, sequential %d", opts.Seed, len(*got), len(*want))
		}
		for i := range *got {
			if (*got)[i] != (*want)[i] {
				t.Fatalf("seed %d: drains diverge at %d: %q vs %q", opts.Seed, i, (*got)[i], (*want)[i])
			}
		}
	}
}

// perDestTraces records each destination's delivery sequence in its
// own slice. With workers > 1 a single shared trace would be appended
// from concurrent goroutines — racy, and ordered by the OS scheduler
// rather than the adversary. Per-destination sequences are the
// schedule's deterministic observable: each destination is owned by
// exactly one worker, so its appends are race-free and in pick order.
func perDestTraces(net *SimNetwork, n int) [][]string {
	traces := make([][]string, n)
	for i := 0; i < n; i++ {
		to := i
		net.Attach(i, func(from int, payload []byte) {
			traces[to] = append(traces[to], fmt.Sprintf("%d->%s", from, payload))
		})
	}
	return traces
}

func compareDestTraces(t *testing.T, label string, want, got [][]string) {
	t.Helper()
	for to := range want {
		if len(got[to]) != len(want[to]) {
			t.Fatalf("%s: destination %d received %d deliveries, want %d", label, to, len(got[to]), len(want[to]))
		}
		for i := range want[to] {
			if got[to][i] != want[to][i] {
				t.Fatalf("%s: destination %d diverges at delivery %d: %q vs %q", label, to, i, got[to][i], want[to][i])
			}
		}
	}
}

// TestSimParallelSameSeedSameSchedule: for workers > 1, a (seed,
// workers, batch) triple must fix the delivery schedule and the
// schedule fingerprint — three fresh runs, identical per-destination
// delivery sequences. This is the transport half of the determinism
// regression gate.
func TestSimParallelSameSeedSameSchedule(t *testing.T) {
	for name, sc := range determinismScenarios() {
		for _, workers := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				opts := sc.opts
				opts.Workers = workers
				var traces [][][]string
				var fps []uint64
				for run := 0; run < 3; run++ {
					net := NewSim(opts)
					trace := perDestTraces(net, opts.N)
					for _, op := range sc.ops {
						op.apply(net, parStepper(5))
					}
					net.QuiesceParallel(5)
					traces = append(traces, trace)
					fps = append(fps, net.ScheduleFingerprint())
				}
				for run := 1; run < 3; run++ {
					if fps[run] != fps[0] {
						t.Fatalf("run %d fingerprint %x, run 0 %x", run, fps[run], fps[0])
					}
					compareDestTraces(t, fmt.Sprintf("run %d vs run 0", run), traces[0], traces[run])
				}
			})
		}
	}
}

// TestSimParallelDeliversEverything: with workers > 1 and no faults,
// every broadcast message reaches every live process exactly once —
// sharding the backlog must lose or duplicate nothing. Runs with real
// worker goroutines, so -race checks the ownership discipline.
func TestSimParallelDeliversEverything(t *testing.T) {
	const n, workers, msgs = 9, 4, 60
	net := NewSim(SimOptions{N: n, Seed: 7, Workers: workers})
	got := make([]map[string]int, n)
	for i := 0; i < n; i++ {
		to := i
		got[to] = map[string]int{}
		net.Attach(i, func(from int, payload []byte) {
			got[to][fmt.Sprintf("%d:%s", from, payload)]++
		})
	}
	for k := 0; k < msgs; k++ {
		net.Broadcast(k%n, []byte(fmt.Sprintf("m%d", k)))
		net.StepParallel(8)
	}
	net.QuiesceParallel(16)
	if net.Pending() != 0 {
		t.Fatalf("backlog not drained: %d pending", net.Pending())
	}
	for to := 0; to < n; to++ {
		for k := 0; k < msgs; k++ {
			key := fmt.Sprintf("%d:m%d", k%n, k)
			if c := got[to][key]; c != 1 {
				t.Fatalf("process %d received %q %d times, want exactly once", to, key, c)
			}
		}
	}
}

// TestSimParallelIndexConsistencyUnderChurn: the per-shard indexes
// must stay consistent through parallel rounds interleaved with
// broadcasts, crashes, partial-broadcast crashes, partitions, heals
// and recoveries, in both FIFO and unordered modes.
func TestSimParallelIndexConsistencyUnderChurn(t *testing.T) {
	for _, fifo := range []bool{false, true} {
		for _, workers := range []int{2, 3} {
			t.Run(fmt.Sprintf("fifo=%v/workers=%d", fifo, workers), func(t *testing.T) {
				const n = 6
				net := NewSim(SimOptions{N: n, Seed: 9, FIFO: fifo, Workers: workers})
				for i := 0; i < n; i++ {
					net.Attach(i, func(int, []byte) {})
				}
				rng := rand.New(rand.NewSource(10))
				down := map[int]bool{}
				for round := 0; round < 400; round++ {
					switch rng.Intn(12) {
					case 0, 1, 2, 3:
						from := rng.Intn(n)
						if !net.Crashed(from) {
							net.Broadcast(from, []byte(fmt.Sprintf("r%d", round)))
						}
					case 4, 5, 6:
						net.StepParallel(rng.Intn(6) + 1)
					case 7:
						net.Partition([]int{0, 1}, []int{2, 3, 4, 5})
					case 8:
						net.Heal()
					case 9:
						if len(down) < 2 {
							id := rng.Intn(n)
							if !net.Crashed(id) {
								down[id] = true
								if rng.Intn(2) == 0 {
									net.Crash(id)
								} else {
									net.CrashPartialBroadcast(id, 0.5)
								}
							}
						}
					case 10, 11:
						for id := range down {
							net.Recover(id)
							delete(down, id)
							break
						}
					}
					checkIndex(t, net)
				}
				net.QuiesceParallel(4)
				checkIndex(t, net)
			})
		}
	}
}

// TestSimParallelBufferedRelays: handlers that broadcast during
// delivery (URB relays) must work through the round buffer — the self
// copy lands inline on the owning worker, the fan-out replays after
// the round — and URB-delivery must still reach every process exactly
// once. Real goroutines, so -race covers the buffering discipline.
func TestSimParallelBufferedRelays(t *testing.T) {
	const n, workers = 8, 4
	base := NewSim(SimOptions{N: n, Seed: 21, Workers: workers})
	urb := NewURB(base, n)
	counts := make([]map[string]int, n)
	for i := 0; i < n; i++ {
		to := i
		counts[to] = map[string]int{}
		urb.Attach(i, func(from int, payload []byte) {
			counts[to][fmt.Sprintf("%d:%s", from, payload)]++
		})
	}
	for k := 0; k < 30; k++ {
		urb.Broadcast(k%n, []byte(fmt.Sprintf("u%d", k)))
		base.StepParallel(6)
	}
	base.QuiesceParallel(8)
	for to := 0; to < n; to++ {
		for k := 0; k < 30; k++ {
			key := fmt.Sprintf("%d:u%d", k%n, k)
			if c := counts[to][key]; c != 1 {
				t.Fatalf("process %d urb-delivered %q %d times, want exactly once", to, key, c)
			}
		}
	}
}

// TestSimStepPanicsWithWorkers: the sequential steppers are undefined
// on a multi-shard adversary and must refuse loudly.
func TestSimStepPanicsWithWorkers(t *testing.T) {
	net := NewSim(SimOptions{N: 3, Seed: 1, Workers: 2})
	for i := 0; i < 3; i++ {
		net.Attach(i, func(int, []byte) {})
	}
	net.Broadcast(0, []byte("x"))
	defer func() {
		if recover() == nil {
			t.Fatal("Step on a Workers>1 network did not panic")
		}
	}()
	net.Step()
}

// TestCrashRepairTouchesOnlyCrashedLinks is the regression test for
// the historical rebuild-on-crash behavior, which rebuilt and
// re-sorted the FIFO queue of every link (O(N²) of them) on each
// crash. The targeted repair may touch only links incident to the
// crashed process — at most 2N of the N² links per fault event — and
// the index must remain fully consistent afterwards. This test fails
// against the historical implementation on the repair-work bound (a
// full rebuild would count every non-empty link) while both pass
// checkIndex, i.e. it would have caught the over-rebuild.
func TestCrashRepairTouchesOnlyCrashedLinks(t *testing.T) {
	const n = 12
	net := NewSim(SimOptions{N: n, Seed: 5, FIFO: true})
	for i := 0; i < n; i++ {
		net.Attach(i, func(int, []byte) {})
	}
	// Put traffic on every link: each process broadcasts several times,
	// with a few deliveries in between so queues have consumed prefixes.
	for k := 0; k < 4*n; k++ {
		net.Broadcast(k%n, []byte(fmt.Sprintf("m%d", k)))
		net.StepN(2)
	}
	if net.Pending() == 0 {
		t.Fatal("test needs a standing backlog")
	}
	base := net.IndexRepair()

	net.Crash(3)
	checkIndex(t, net)
	afterCrash := net.IndexRepair()
	if d := afterCrash.LinksRepaired - base.LinksRepaired; d > 2*n {
		t.Fatalf("Crash repaired %d links, want at most %d (only the crashed process's links)", d, 2*n)
	}

	net.CrashPartialBroadcast(7, 0.5)
	checkIndex(t, net)
	afterPartial := net.IndexRepair()
	if d := afterPartial.LinksRepaired - afterCrash.LinksRepaired; d > 2*n {
		t.Fatalf("CrashPartialBroadcast repaired %d links, want at most %d", d, 2*n)
	}

	net.Recover(3)
	net.Recover(7)
	checkIndex(t, net)
	afterRecover := net.IndexRepair()
	if d := afterRecover.LinksRepaired - afterPartial.LinksRepaired; d > 4*n {
		t.Fatalf("two Recovers repaired %d links, want at most %d", d, 4*n)
	}

	// Partitions edit no queues at all.
	net.Partition([]int{0, 1, 2}, []int{3, 4, 5, 6, 7, 8, 9, 10, 11})
	checkIndex(t, net)
	net.Heal()
	checkIndex(t, net)
	if got := net.IndexRepair().LinksRepaired; got != afterRecover.LinksRepaired {
		t.Fatalf("Partition/Heal repaired %d links, want 0", got-afterRecover.LinksRepaired)
	}
	net.Quiesce()
	checkIndex(t, net)
}

// TestSimParallelSpanTimingSameSchedule: the serial-instrumented
// timing mode must not perturb the schedule — same (seed, workers,
// batch), timed and untimed, identical per-destination delivery
// sequences and fingerprint, and the timed run reports a span.
func TestSimParallelSpanTimingSameSchedule(t *testing.T) {
	run := func(timed bool) ([][]string, uint64, *SimNetwork) {
		net := NewSim(SimOptions{N: 6, Seed: 33, Workers: 3})
		net.SetSpanTiming(timed)
		trace := perDestTraces(net, 6)
		for k := 0; k < 40; k++ {
			net.Broadcast(k%6, []byte(fmt.Sprintf("m%d", k)))
			net.StepParallel(4)
		}
		net.QuiesceParallel(4)
		return trace, net.ScheduleFingerprint(), net
	}
	a, afp, _ := run(false)
	b, bfp, timedNet := run(true)
	if afp != bfp {
		t.Fatalf("timed mode fingerprint %x, untimed %x", bfp, afp)
	}
	compareDestTraces(t, "timed vs untimed", a, b)
	if span, _, rounds := timedNet.SpanStats(); rounds == 0 || span <= 0 {
		t.Fatalf("timed run recorded span %v over %d rounds, want nonzero", span, rounds)
	}
}
