package transport

import "sort"

// This file is SimNetwork's eligible-envelope index. The adversary's
// Step picks uniformly among the eligible in-flight envelopes, in
// ascending pending-array order; the seed therefore fixes the whole
// delivery schedule, and every recorded experiment relies on that. The
// index reproduces the historical scan-based pick bit for bit — same
// rng draws, same chosen envelope — while making the pick cost
// independent of the backlog:
//
//   - each envelope carries its eligibility bit, maintained
//     incrementally (computed on enqueue, cleared on delivery,
//     promoted on FIFO link advance, rebuilt on crash/partition);
//   - a Fenwick tree over pending positions turns "the k-th eligible
//     envelope in array order" — exactly what the scan used to produce
//     — into an O(log pending) order-statistics query;
//   - per-link queues (FIFO mode only) hold each link's undelivered
//     envelopes in sequence order, so advancing nextSeq promotes the
//     link's next envelope in O(1) instead of rescanning;
//   - in the unrestricted regime (no FIFO, no crash, no partition)
//     every pending envelope is eligible, the k-th eligible IS
//     pending[k], and Step picks in O(1) without touching the tree.
//
// Step is thus O(1) or O(log pending) where it used to be O(pending),
// and the eligible set is never enumerated at all.

// fenwick is a binary indexed tree of 0/1 eligibility marks over
// pending positions: add flips a mark, selectK finds the position of
// the (k+1)-th set mark in ascending order. cap is a power of two so
// selectK can descend the implicit tree directly.
type fenwick struct {
	tree []int // 1-based; tree[i] sums the 2^k block ending at i
	cap  int
}

// add applies delta at 0-based position i.
func (f *fenwick) add(i, delta int) {
	for j := i + 1; j <= f.cap; j += j & -j {
		f.tree[j] += delta
	}
}

// selectK returns the 0-based position of the (k+1)-th set mark.
// Callers guarantee k is below the number of set marks.
func (f *fenwick) selectK(k int) int {
	pos, rem := 0, k+1
	for b := f.cap; b > 0; b >>= 1 {
		if next := pos + b; next <= f.cap && f.tree[next] < rem {
			rem -= f.tree[next]
			pos = next
		}
	}
	// pos is the largest position with fewer than rem marks in its
	// prefix, i.e. (1-based) pos+1 holds the k-th mark.
	return pos
}

// rebuild resizes to hold n positions and reconstructs the tree from
// the envelopes' eligibility bits in O(n).
func (f *fenwick) rebuild(pending []envelope) {
	n := len(pending)
	c := 1
	for c < n {
		c <<= 1
	}
	if c > f.cap || f.cap > 4*c {
		f.cap = c
		f.tree = make([]int, c+1)
	} else {
		clear(f.tree)
	}
	for i := range pending {
		if pending[i].elig {
			f.tree[i+1]++
		}
	}
	for i := 1; i <= f.cap; i++ {
		if j := i + (i & -i); j <= f.cap {
			f.tree[j] += f.tree[i]
		}
	}
}

// linkQueue holds one link's undelivered envelopes (as pending
// indices) in sequence order; q[head:] is live. Only the head can be
// FIFO-eligible, so advancing the link pops the head and promotes the
// new one.
type linkQueue struct {
	q    []int
	head int
}

func (lq *linkQueue) push(p int) int {
	lq.q = append(lq.q, p)
	return len(lq.q) - 1
}

func (lq *linkQueue) peek() (int, bool) {
	if lq.head == len(lq.q) {
		return 0, false
	}
	return lq.q[lq.head], true
}

// uniform reports the unrestricted regime: every pending envelope is
// eligible by construction, so the adversary can pick by position
// without consulting the index (and enqueue/remove skip maintaining
// it — rebuildIndex reconstructs on the transitions out).
func (n *SimNetwork) uniform() bool {
	return !n.opts.FIFO && !n.anyCrashed && !n.partitioned
}

// enqueue appends an in-flight envelope, maintaining the eligibility
// index.
func (n *SimNetwork) enqueue(e envelope) {
	p := len(n.pending)
	if n.uniform() {
		e.elig = true
		n.pending = append(n.pending, e)
		n.eligCount++
		return
	}
	e.elig = n.eligible(&e)
	if n.opts.FIFO {
		// Per-link sequence numbers only grow, so pushing keeps the
		// queue seq-sorted.
		e.lpos = n.linkQ[n.link(e.from, e.to)].push(p)
	}
	n.pending = append(n.pending, e)
	if len(n.pending) > n.idx.cap {
		n.idx.rebuild(n.pending)
		if e.elig {
			n.eligCount++
		}
		return
	}
	if e.elig {
		n.idx.add(p, 1)
		n.eligCount++
	}
}

// remove deletes pending[at] (which must be eligible) from the
// backlog and the index by an O(1) swap with the last element, and in
// FIFO mode advances the link: nextSeq moves past the removed
// envelope and the link's next envelope, if now deliverable, is
// promoted into the eligible set.
func (n *SimNetwork) remove(at int) envelope {
	e := n.pending[at]
	n.eligCount--
	uniform := n.uniform()
	if !uniform {
		n.idx.add(at, -1)
	}
	if n.opts.FIFO {
		lq := &n.linkQ[n.link(e.from, e.to)]
		if h, ok := lq.peek(); !ok || h != at {
			panic("transport: eligible index out of sync with pending (FIFO head)")
		}
		lq.head++
		if lq.head == len(lq.q) {
			lq.q, lq.head = lq.q[:0], 0
		} else if lq.head >= 64 && lq.head*2 >= len(lq.q) {
			// Reclaim the consumed prefix once it dominates; lpos is
			// absolute, so the shifted survivors are re-pointed.
			live := copy(lq.q, lq.q[lq.head:])
			lq.q = lq.q[:live]
			lq.head = 0
			for pos, p := range lq.q {
				n.pending[p].lpos = pos
			}
		}
	}
	last := len(n.pending) - 1
	if at != last {
		moved := n.pending[last]
		n.pending[at] = moved
		if !uniform && moved.elig {
			n.idx.add(last, -1)
			n.idx.add(at, 1)
		}
		if n.opts.FIFO {
			n.linkQ[n.link(moved.from, moved.to)].q[moved.lpos] = at
		}
	}
	n.pending[last] = envelope{}
	n.pending = n.pending[:last]
	if n.opts.FIFO {
		link := n.link(e.from, e.to)
		n.nextSeq[link] = e.seq
		if h, ok := n.linkQ[link].peek(); ok {
			he := &n.pending[h]
			if !he.elig && n.eligible(he) {
				he.elig = true
				n.idx.add(h, 1)
				n.eligCount++
			}
		}
	}
	return e
}

// rebuildIndex recomputes every eligibility bit, the count, the
// Fenwick tree and (in FIFO mode) the per-link queues from pending.
// It runs on the structural events that change eligibility wholesale
// — crash, partition, heal — which also edit pending in place.
func (n *SimNetwork) rebuildIndex() {
	n.eligCount = 0
	for i := range n.pending {
		e := &n.pending[i]
		e.elig = n.eligible(e)
		if e.elig {
			n.eligCount++
		}
	}
	if n.uniform() {
		// The tree and queues are not consulted in this regime; the
		// next transition out rebuilds them.
		return
	}
	n.idx.rebuild(n.pending)
	if !n.opts.FIFO {
		return
	}
	for l := range n.linkQ {
		n.linkQ[l].q, n.linkQ[l].head = n.linkQ[l].q[:0], 0
	}
	for i := range n.pending {
		e := &n.pending[i]
		n.linkQ[n.link(e.from, e.to)].q = append(n.linkQ[n.link(e.from, e.to)].q, i)
	}
	for l := range n.linkQ {
		q := n.linkQ[l].q
		// Swap-removes scrambled pending, so re-sort each link by seq.
		sort.Slice(q, func(a, b int) bool {
			return n.pending[q[a]].seq < n.pending[q[b]].seq
		})
		for pos, p := range q {
			n.pending[p].lpos = pos
		}
	}
}
