package transport

// This file is SimNetwork's eligible-envelope index. The adversary's
// pick is uniform among the eligible in-flight envelopes of a shard,
// in ascending pending-array order; the seed therefore fixes the whole
// delivery schedule, and every recorded experiment relies on that. The
// index reproduces the historical scan-based pick bit for bit — same
// rng draws, same chosen envelope — while making the pick cost
// independent of the backlog:
//
//   - each envelope carries its eligibility bit, maintained
//     incrementally (computed on enqueue, cleared on delivery,
//     promoted on FIFO link advance, refreshed on crash/partition);
//   - a Fenwick tree per shard over pending positions turns "the k-th
//     eligible envelope in array order" — exactly what the scan used
//     to produce — into an O(log pending) order-statistics query;
//   - per-link queues (FIFO mode only) hold each link's undelivered
//     envelopes in sequence order, so advancing nextSeq promotes the
//     link's next envelope in O(1) instead of rescanning;
//   - in the unrestricted regime (no FIFO, no crash, no partition)
//     every pending envelope is eligible, the k-th eligible IS
//     pending[k], and the pick is O(1) without touching the tree.
//
// The backlog is partitioned by destination process into shards
// (simparallel.go); a link (from, to) belongs entirely to the shard
// owning `to`, so its FIFO queue stores positions into exactly one
// shard's pending array, and parallel workers touch disjoint queues.
//
// Structural fault events repair only what they break:
//
//   - Crash(id) compacts one shard (the one owning deliveries to id)
//     in order, clears id's N inbound queues, and re-points the stored
//     positions of the survivors through their own lpos back-pointers
//     — no re-sort, no scan of the other N²−N links (historically a
//     crash rebuilt and re-sorted every link's queue);
//   - CrashPartialBroadcast additionally filters id's N outbound
//     queues through the compaction remap, preserving order;
//   - Partition/Heal move no envelopes and touch no queues at all;
//   - every such event ends in refreshEligibility, an O(pending)
//     recompute of the bits and trees (the regime flags make
//     eligibility non-local, so the bits genuinely need the sweep).

// fenwick is a binary indexed tree of 0/1 eligibility marks over
// pending positions: add flips a mark, selectK finds the position of
// the (k+1)-th set mark in ascending order. cap is a power of two so
// selectK can descend the implicit tree directly.
type fenwick struct {
	tree []int // 1-based; tree[i] sums the 2^k block ending at i
	cap  int
}

// add applies delta at 0-based position i.
func (f *fenwick) add(i, delta int) {
	for j := i + 1; j <= f.cap; j += j & -j {
		f.tree[j] += delta
	}
}

// selectK returns the 0-based position of the (k+1)-th set mark.
// Callers guarantee k is below the number of set marks.
func (f *fenwick) selectK(k int) int {
	pos, rem := 0, k+1
	for b := f.cap; b > 0; b >>= 1 {
		if next := pos + b; next <= f.cap && f.tree[next] < rem {
			rem -= f.tree[next]
			pos = next
		}
	}
	// pos is the largest position with fewer than rem marks in its
	// prefix, i.e. (1-based) pos+1 holds the k-th mark.
	return pos
}

// rebuild resizes to hold n positions and reconstructs the tree from
// the envelopes' eligibility bits in O(n).
func (f *fenwick) rebuild(pending []envelope) {
	n := len(pending)
	c := 1
	for c < n {
		c <<= 1
	}
	if c > f.cap || f.cap > 4*c {
		f.cap = c
		f.tree = make([]int, c+1)
	} else {
		clear(f.tree)
	}
	for i := range pending {
		if pending[i].elig {
			f.tree[i+1]++
		}
	}
	for i := 1; i <= f.cap; i++ {
		if j := i + (i & -i); j <= f.cap {
			f.tree[j] += f.tree[i]
		}
	}
}

// linkQueue holds one link's undelivered envelopes (as positions into
// the owning shard's pending array) in sequence order; q[head:] is
// live. Only the head can be FIFO-eligible, so advancing the link pops
// the head and promotes the new one.
type linkQueue struct {
	q    []int
	head int
}

func (lq *linkQueue) push(p int) int {
	lq.q = append(lq.q, p)
	return len(lq.q) - 1
}

func (lq *linkQueue) peek() (int, bool) {
	if lq.head == len(lq.q) {
		return 0, false
	}
	return lq.q[lq.head], true
}

// uniform reports the unrestricted regime: every pending envelope is
// eligible by construction, so the adversary can pick by position
// without consulting the index (and enqueue/remove skip maintaining
// it — refreshEligibility reconstructs on the transitions out).
func (n *SimNetwork) uniform() bool {
	return !n.opts.FIFO && !n.anyCrashed && !n.partitioned
}

// enqueueShard appends an in-flight envelope to its shard, maintaining
// the eligibility index. During parallel rounds it is only called by
// the worker owning the shard (dup re-enqueues; coordinator fan-out
// happens between rounds), and every structure it touches — the shard
// itself and the envelope's link entries — is owned by that worker.
func (n *SimNetwork) enqueueShard(sh *simShard, e envelope) {
	p := len(sh.pending)
	if n.uniform() {
		e.elig = true
		sh.pending = append(sh.pending, e)
		sh.eligCount++
		return
	}
	e.elig = n.eligible(&e)
	if n.opts.FIFO {
		// Per-link sequence numbers only grow, so pushing keeps the
		// queue seq-sorted.
		e.lpos = n.linkQ[n.link(e.from, e.to)].push(p)
	}
	sh.pending = append(sh.pending, e)
	if len(sh.pending) > sh.idx.cap {
		sh.idx.rebuild(sh.pending)
		if e.elig {
			sh.eligCount++
		}
		return
	}
	if e.elig {
		sh.idx.add(p, 1)
		sh.eligCount++
	}
}

// removeFrom deletes sh.pending[at] (which must be eligible) from the
// shard's backlog and index by an O(1) swap with the last element, and
// in FIFO mode advances the link: nextSeq moves past the removed
// envelope and the link's next envelope, if now deliverable, is
// promoted into the eligible set.
func (n *SimNetwork) removeFrom(sh *simShard, at int) envelope {
	e := sh.pending[at]
	sh.eligCount--
	uniform := n.uniform()
	if !uniform {
		sh.idx.add(at, -1)
	}
	if n.opts.FIFO {
		lq := &n.linkQ[n.link(e.from, e.to)]
		if h, ok := lq.peek(); !ok || h != at {
			panic("transport: eligible index out of sync with pending (FIFO head)")
		}
		lq.head++
		if lq.head == len(lq.q) {
			lq.q, lq.head = lq.q[:0], 0
		} else if lq.head >= 64 && lq.head*2 >= len(lq.q) {
			// Reclaim the consumed prefix once it dominates; lpos is
			// absolute, so the shifted survivors are re-pointed.
			live := copy(lq.q, lq.q[lq.head:])
			lq.q = lq.q[:live]
			lq.head = 0
			for pos, p := range lq.q {
				sh.pending[p].lpos = pos
			}
		}
	}
	last := len(sh.pending) - 1
	if at != last {
		moved := sh.pending[last]
		sh.pending[at] = moved
		if !uniform && moved.elig {
			sh.idx.add(last, -1)
			sh.idx.add(at, 1)
		}
		if n.opts.FIFO {
			n.linkQ[n.link(moved.from, moved.to)].q[moved.lpos] = at
		}
	}
	sh.pending[last] = envelope{}
	sh.pending = sh.pending[:last]
	if n.opts.FIFO {
		link := n.link(e.from, e.to)
		n.nextSeq[link] = e.seq
		if h, ok := n.linkQ[link].peek(); ok {
			he := &sh.pending[h]
			if !he.elig && n.eligible(he) {
				he.elig = true
				sh.idx.add(h, 1)
				sh.eligCount++
			}
		}
	}
	return e
}

// refreshEligibility recomputes every eligibility bit, per-shard count
// and Fenwick tree from the pending arrays. It runs after the
// structural events that change eligibility wholesale — crash,
// recover, partition, heal. It does NOT touch the FIFO link queues:
// their content and order are maintained by the event-specific repair
// (dropInbound, dropOutboundPartial, repairLinks), so no per-link scan
// or re-sort happens here.
func (n *SimNetwork) refreshEligibility() {
	uni := n.uniform()
	for s := range n.shards {
		sh := &n.shards[s]
		sh.eligCount = 0
		for i := range sh.pending {
			e := &sh.pending[i]
			e.elig = n.eligible(e)
			if e.elig {
				sh.eligCount++
			}
		}
		if !uni {
			sh.idx.rebuild(sh.pending)
		}
		// In the unrestricted regime the tree is not consulted; the
		// next transition out refreshes it.
	}
	n.idxRepair.Refreshes++
}

// dropInbound discards every in-flight envelope addressed to id. Only
// id's shard holds such envelopes; its pending array is compacted in
// place, preserving order — so the surviving envelopes' queue order
// and lpos back-pointers stay valid, and only the positions stored in
// the queues need re-pointing (reseatQueues).
func (n *SimNetwork) dropInbound(id int) {
	sh := n.shardOf(id)
	keep := sh.pending[:0]
	for _, e := range sh.pending {
		if e.to == id {
			n.stats.DroppedCrash++
			continue
		}
		keep = append(keep, e)
	}
	if len(keep) == len(sh.pending) {
		return // nothing dropped, nothing moved
	}
	clearTail(sh.pending, len(keep))
	sh.pending = keep
	if n.opts.FIFO {
		n.reseatQueues(sh)
	}
}

// dropOutboundPartial discards each of id's in-flight envelopes in the
// given shard with probability 1−keepProb (draws from the coordinator
// rng, ascending position order), compacting in place and filtering
// id's outbound queues through the old→new position remap — order
// preserved, no re-sort.
func (n *SimNetwork) dropOutboundPartial(sh *simShard, id int, keepProb float64) {
	var remap []int
	if n.opts.FIFO {
		remap = make([]int, len(sh.pending))
	}
	keep := sh.pending[:0]
	dropped := 0
	for i := range sh.pending {
		e := sh.pending[i]
		if e.from == id && n.rng.Float64() >= keepProb {
			n.stats.DroppedCrash++
			if remap != nil {
				remap[i] = -1
			}
			dropped++
			continue
		}
		if remap != nil {
			remap[i] = len(keep)
		}
		keep = append(keep, e)
	}
	if dropped == 0 {
		return
	}
	clearTail(sh.pending, len(keep))
	sh.pending = keep
	if !n.opts.FIFO {
		return
	}
	// Filter id's outbound queues owned by this shard: entries map
	// through remap (dropping −1), stay in seq order, and get fresh
	// lpos back-pointers.
	for to := sh.self; to < n.opts.N; to += n.nshards {
		if to == id {
			continue
		}
		lq := &n.linkQ[n.link(id, to)]
		if lq.head == len(lq.q) {
			continue
		}
		out := lq.q[:0]
		for _, oldPos := range lq.q[lq.head:] {
			np := remap[oldPos]
			if np < 0 {
				continue
			}
			sh.pending[np].lpos = len(out)
			out = append(out, np)
		}
		lq.q, lq.head = out, 0
		n.idxRepair.LinksRepaired++
	}
	// Every other queue kept its content and order; re-point stored
	// positions via the survivors' (unchanged) lpos back-pointers.
	n.reseatQueues(sh)
}

// reseatQueues re-points every live envelope's queue slot at its
// current pending position. It is valid after any order-preserving
// compaction: queue content, order and lpos values are unchanged, only
// the positions the queues store went stale.
func (n *SimNetwork) reseatQueues(sh *simShard) {
	for pos := range sh.pending {
		e := &sh.pending[pos]
		n.linkQ[n.link(e.from, e.to)].q[e.lpos] = pos
	}
}
