package transport

// The parallel adversary. The backlog is partitioned by destination
// process into per-worker shards; StepParallel runs one round: each
// worker makes its round-robin share of up to `batch` picks from its
// own shard with its own seeded PRNG, concurrently, and the
// coordinator then replays the round's buffered handler broadcasts in
// worker order. The resulting schedule — the round-robin merge of the
// per-worker pick sequences — is a pure function of (seed, workers,
// batch): no wall-clock, goroutine scheduling or map order leaks in.
//
// Why this is safe without locks:
//
//   - a worker owns every process id with id mod W == its index, and
//     with it that process's deliveries, its shard of the backlog, and
//     (FIFO mode) the queues and sequence cursors of every link INTO
//     those processes — all disjoint across workers;
//   - replica handlers only mutate the receiving replica (delivery in
//     Algorithm 1 is a log insert, never a broadcast), so concurrent
//     deliveries to distinct processes don't race;
//   - handlers that DO broadcast on delivery (URB relays) broadcast as
//     the process being delivered to, which the current worker owns:
//     the self-copy is delivered inline and the remote fan-out is
//     buffered in the worker's outbox, replayed by the coordinator
//     after the round (drop draws from the root rng, deterministic);
//   - structural operations — driver broadcasts, Crash, Partition,
//     Heal, Resize — happen between rounds, on the coordinator.
//
// With one worker the machinery degenerates to the sequential
// adversary: the single shard draws from the root rng, so a batch-1
// round performs the exact rng draw sequence of Step (pick, duplicate
// draws, then the buffered broadcast's drop draws — which Step makes
// inline during the handler call), and the schedule is bit-for-bit the
// historical one. TestSimParallelMatchesSequential retains that proof.

import (
	"math/rand"
	"sync"
	"time"
)

// simShard is one worker's slice of the adversary: the pending
// envelopes addressed to the processes it owns, their eligible index,
// and the round-local state (PRNG, outbox, stat deltas, schedule
// fingerprint). With Workers <= 1, shard 0's rng aliases the root rng.
type simShard struct {
	self      int
	rng       *rand.Rand
	pending   []envelope
	eligCount int
	idx       fenwick
	// Round state, owned by the worker during a round and drained by
	// the coordinator between rounds.
	roundStats Stats
	outbox     []bufMsg
	delivered  int
	dupID      uint64
	// Schedule fingerprint: a running hash over this shard's picks, in
	// pick order. The merged fingerprint (ScheduleFingerprint) pins the
	// whole schedule for the determinism regression tests.
	picks uint64
	fp    uint64
}

// bufMsg is a handler broadcast buffered during a parallel round; the
// self-copy was already delivered inline, the remote fan-out replays
// after the round.
type bufMsg struct {
	from, shard, epoch int
	payload            []byte
}

// workerSeed derives worker w's PRNG seed from the network seed
// (splitmix64), so (seed, workers) fixes every per-shard stream and no
// worker stream aliases the root rng's.
func workerSeed(seed uint64, w int) uint64 {
	x := seed + 0x9e3779b97f4a7c15*uint64(w+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fpMix folds one pick (sender, receiver) into a running schedule
// fingerprint (splitmix64-style).
func fpMix(h, from, to uint64) uint64 {
	x := h ^ (from*0x9e3779b97f4a7c15 + to + 0x632be59bd9b4e019)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// bufferBroadcast handles a Broadcast issued by a handler during a
// parallel round: self-delivery inline on the owning worker, remote
// fan-out deferred to the coordinator. Handlers must broadcast only as
// the process they are attached to — `from` identifies the owning
// worker, and a foreign `from` would race on another worker's outbox.
func (n *SimNetwork) bufferBroadcast(from, shard, epoch int, payload []byte) {
	if n.crashed[from] {
		return
	}
	sh := n.shardOf(from)
	sh.roundStats.Broadcasts++
	sh.roundStats.Sends++
	sh.roundStats.Delivered++
	sh.roundStats.Bytes += uint64(len(payload))
	n.deliver(from, from, shard, epoch, payload)
	sh.outbox = append(sh.outbox, bufMsg{from: from, shard: shard, epoch: epoch, payload: payload})
}

// runWorker performs up to quota picks on shard w: the worker half of
// one parallel round. It touches only worker-owned state (see the
// file comment), draws only from the shard rng, and returns the number
// of messages delivered.
func (n *SimNetwork) runWorker(w, quota int) int {
	sh := &n.shards[w]
	delivered := 0
	for delivered < quota {
		if sh.eligCount == 0 {
			break
		}
		k := sh.rng.Intn(sh.eligCount)
		at := k
		if sh.eligCount != len(sh.pending) {
			at = sh.idx.selectK(k)
		}
		e := n.removeFrom(sh, at)
		if n.opts.DuplicateProb > 0 && sh.rng.Float64() < n.opts.DuplicateProb {
			dup := e
			dup.id = n.dupID(sh)
			n.enqueueShard(sh, dup)
			sh.roundStats.Sends++
			sh.roundStats.Bytes += uint64(len(e.payload))
		}
		if n.hasFaults {
			link := n.link(e.from, e.to)
			if f := n.fault(link); f.Dup > 0 && sh.rng.Float64() < f.Dup {
				dup := e
				dup.id = n.dupID(sh)
				if n.opts.FIFO {
					n.linkSeq[link]++
					dup.seq = n.linkSeq[link]
				}
				n.enqueueShard(sh, dup)
				sh.roundStats.Sends++
				sh.roundStats.Bytes += uint64(len(e.payload))
			}
		}
		sh.roundStats.Delivered++
		sh.picks++
		sh.fp = fpMix(sh.fp, uint64(e.from), uint64(e.to))
		n.deliver(e.to, e.from, e.shard, e.epoch, e.payload)
		delivered++
	}
	return delivered
}

// dupID issues a worker-local envelope id for a duplicate created
// during a round (the coordinator's nextID cannot be touched from a
// worker). Ids are tie-break/debug metadata, never consulted by the
// schedule, so per-worker numbering spaces are fine.
func (n *SimNetwork) dupID(sh *simShard) uint64 {
	sh.dupID++
	return uint64(sh.self)<<48 | sh.dupID | 1<<63
}

// StepParallel delivers up to batch messages in one parallel round and
// returns how many were delivered. The batch is dealt to the workers
// round-robin (worker 0 gets pick 1, worker 1 pick 2, …), each worker
// executes its share concurrently against its own shard, and the
// round's buffered handler broadcasts are then fanned out in worker
// order. A batch of 0 defaults to the worker count.
//
// Determinism: the delivery schedule and final states are a pure
// function of (seed, workers, the sequence of batch sizes) — see the
// file comment. With Workers <= 1 and batch 1 the schedule is exactly
// the sequential Step's.
func (n *SimNetwork) StepParallel(batch int) int {
	if batch <= 0 {
		batch = n.nshards
	}
	w := n.nshards
	base, extra := batch/w, batch%w
	n.inRound = true
	if w == 1 || n.timing {
		// Inline execution: one worker needs no goroutines, and the
		// span-timing mode runs workers sequentially to time each
		// round's critical path — the schedule is identical either way,
		// because workers share no mutable state during a round.
		var roundMax int64
		for i := 0; i < w; i++ {
			quota := base
			if i < extra {
				quota++
			}
			if quota == 0 {
				n.shards[i].delivered = 0
				continue
			}
			var t0 time.Time
			if n.timing {
				t0 = time.Now()
			}
			n.shards[i].delivered = n.runWorker(i, quota)
			if n.timing {
				if dt := int64(time.Since(t0)); dt > roundMax {
					roundMax = dt
				}
			}
		}
		n.spanNS += roundMax
	} else {
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			quota := base
			if i < extra {
				quota++
			}
			if quota == 0 {
				n.shards[i].delivered = 0
				continue
			}
			wg.Add(1)
			go func(i, quota int) {
				defer wg.Done()
				n.shards[i].delivered = n.runWorker(i, quota)
			}(i, quota)
		}
		wg.Wait()
	}
	n.inRound = false
	// Serial coordinator tail: replay buffered broadcasts in worker
	// order (drop draws from the root rng), merge the stat deltas.
	var t1 time.Time
	if n.timing {
		t1 = time.Now()
	}
	total := 0
	for i := 0; i < w; i++ {
		sh := &n.shards[i]
		total += sh.delivered
		for j := range sh.outbox {
			b := &sh.outbox[j]
			n.fanOut(b.from, b.shard, b.epoch, b.payload)
			*b = bufMsg{}
		}
		sh.outbox = sh.outbox[:0]
		n.stats.add(sh.roundStats)
		sh.roundStats = Stats{}
	}
	if n.timing {
		n.serialNS += int64(time.Since(t1))
		n.rounds++
	}
	return total
}

// QuiesceParallel runs parallel rounds of the given batch size until a
// round delivers nothing, returning the total delivered. Handlers may
// broadcast during rounds (URB relays); the replayed fan-out keeps the
// loop going until those are drained too.
func (n *SimNetwork) QuiesceParallel(batch int) int {
	total := 0
	for {
		d := n.StepParallel(batch)
		total += d
		if d == 0 {
			return total
		}
	}
}

// ScheduleFingerprint returns a hash pinning the delivery schedule so
// far: each shard's pick sequence is folded in pick order, and the
// per-shard chains are merged in shard order. Two runs with the same
// (seed, workers, batch sequence) produce identical fingerprints; any
// divergence in which envelope was delivered when, anywhere, changes
// the value. Maintained by both the sequential and the parallel
// steppers.
func (n *SimNetwork) ScheduleFingerprint() uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for i := range n.shards {
		sh := &n.shards[i]
		h = fpMix(h, sh.fp, sh.picks)
	}
	return h
}

// SetSpanTiming toggles the serial-instrumented mode: parallel rounds
// execute their workers sequentially, timing each, and accumulate the
// round's critical path (the slowest worker) plus the coordinator's
// serial tail. The schedule is identical to the concurrent mode —
// workers share nothing during a round — so the span is a faithful
// measure of the parallel critical path even on a single-core host,
// where wall-clock speedup is physically unobservable.
func (n *SimNetwork) SetSpanTiming(on bool) { n.timing = on }

// SpanStats reports the accumulated critical-path time (max worker
// time per round, summed), the serial coordinator time, and the number
// of timed rounds. Zero unless SetSpanTiming(true) was set before the
// rounds ran.
func (n *SimNetwork) SpanStats() (span, serial time.Duration, rounds int) {
	return time.Duration(n.spanNS), time.Duration(n.serialNS), n.rounds
}
