package updatec

import (
	"fmt"
	"testing"
)

// TestWithWorkersValidation pins the option's contract: the parallel
// adversary shards the simulated transport, so it requires WithSeed.
func TestWithWorkersValidation(t *testing.T) {
	if _, _, err := New(3, SetObject(), WithWorkers(4)); err == nil {
		t.Fatal("WithWorkers without WithSeed did not error")
	}
	if _, _, err := New(3, SetObject(), WithSeed(1), WithWorkers(-1)); err == nil {
		t.Fatal("negative WithWorkers did not error")
	}
	cluster, _, err := New(3, SetObject(), WithSeed(1), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if got := cluster.Workers(); got != 4 {
		t.Fatalf("Workers() = %d, want 4", got)
	}
}

// TestWorkersDeterminismRegression is the determinism gate at the
// public API: the same (seed, workers) pair must yield the identical
// delivery schedule (ScheduleFingerprint) and the identical final
// transport Stats across fresh runs — three runs each for a plain
// cluster, a key-sharded cluster, and a cluster resized mid-run with
// the backlog in flight, at one and at four workers, through a
// workload that also crashes, partitions, heals and recovers.
func TestWorkersDeterminismRegression(t *testing.T) {
	type snap struct {
		fp        uint64
		stats     NetworkStats
		converged bool
	}
	run := func(shards, resize, workers int) snap {
		opts := []Option{WithSeed(31), WithWorkers(workers)}
		if shards > 1 {
			opts = append(opts, WithShards(shards))
		}
		cluster, sets, err := New(4, SetObject(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer cluster.Close()
		crashed := false
		for k := 0; k < 120; k++ {
			switch k {
			case 30:
				if err := cluster.Crash(2); err != nil {
					t.Fatal(err)
				}
				crashed = true
			case 40:
				if err := cluster.Partition([]int{0, 1}); err != nil {
					t.Fatal(err)
				}
			case 60:
				if err := cluster.Heal(); err != nil {
					t.Fatal(err)
				}
			case 70:
				if err := cluster.Recover(2); err != nil {
					t.Fatal(err)
				}
				crashed = false
			}
			if resize > 0 && k == 55 {
				if err := cluster.Resize(resize); err != nil {
					t.Fatal(err)
				}
			}
			p := k % 4
			if p == 2 && crashed {
				continue
			}
			if k%5 == 0 {
				sets[p].Delete(fmt.Sprintf("v%d", k%9))
			} else {
				sets[p].Insert(fmt.Sprintf("v%d", k%9))
			}
			cluster.Deliver()
		}
		cluster.Settle()
		if err := cluster.Sync(); err != nil {
			t.Fatal(err)
		}
		cluster.Settle()
		return snap{fp: cluster.ScheduleFingerprint(), stats: cluster.Stats(), converged: cluster.Converged()}
	}
	variants := []struct {
		name   string
		shards int
		resize int
	}{
		{"plain", 1, 0},
		{"sharded", 4, 0},
		{"resize", 2, 5},
	}
	for _, v := range variants {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", v.name, workers), func(t *testing.T) {
				first := run(v.shards, v.resize, workers)
				if !first.converged {
					t.Fatalf("run 0 did not converge")
				}
				for r := 1; r < 3; r++ {
					got := run(v.shards, v.resize, workers)
					if got.fp != first.fp {
						t.Fatalf("run %d schedule fingerprint %x, run 0 %x", r, got.fp, first.fp)
					}
					if got.stats != first.stats {
						t.Fatalf("run %d stats %+v, run 0 %+v", r, got.stats, first.stats)
					}
					if !got.converged {
						t.Fatalf("run %d did not converge", r)
					}
				}
			})
		}
	}
}
